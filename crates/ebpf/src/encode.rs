//! The classic 8-byte eBPF binary encoding.
//!
//! Layout per slot (little-endian):
//!
//! ```text
//! byte 0      opcode
//! byte 1      dst_reg (low nibble) | src_reg (high nibble)
//! bytes 2-3   off (i16)
//! bytes 4-7   imm (i32)
//! ```
//!
//! `lddw` (`BPF_LD | BPF_IMM | BPF_DW`) occupies two slots; the second
//! slot's `imm` carries the high 32 bits of the immediate.

use crate::error::DecodeError;
use crate::insn::{AluOp, Insn, JmpOp, MemSize, Src, Width};
use crate::reg::Reg;

// Instruction classes.
const CLASS_LD: u8 = 0x00;
const CLASS_LDX: u8 = 0x01;
const CLASS_ST: u8 = 0x02;
const CLASS_STX: u8 = 0x03;
const CLASS_ALU: u8 = 0x04;
const CLASS_JMP: u8 = 0x05;
const CLASS_JMP32: u8 = 0x06;
const CLASS_ALU64: u8 = 0x07;

// Source-operand bit for ALU/JMP.
const SRC_K: u8 = 0x00;
const SRC_X: u8 = 0x08;

// Size field for LD/ST.
const SIZE_W: u8 = 0x00;
const SIZE_H: u8 = 0x08;
const SIZE_B: u8 = 0x10;
const SIZE_DW: u8 = 0x18;

// Mode field for LD/ST.
const MODE_IMM: u8 = 0x00;
const MODE_MEM: u8 = 0x60;

/// One raw encoding slot, the direct image of the 8 bytes.
///
/// # Examples
///
/// ```
/// use ebpf::{Insn, RawInsn, Reg, Src, Width, AluOp};
/// let insn = Insn::Alu { width: Width::W64, op: AluOp::Mov, dst: Reg::R0, src: Src::Imm(7) };
/// let raw = RawInsn::encode(insn);
/// assert_eq!(raw.len(), 1);
/// let bytes = raw[0].to_bytes();
/// assert_eq!(bytes[0], 0xb7); // BPF_ALU64 | BPF_MOV | BPF_K
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RawInsn {
    /// Opcode byte.
    pub opcode: u8,
    /// Destination register index (0–10).
    pub dst: u8,
    /// Source register index (0–10).
    pub src: u8,
    /// Signed 16-bit offset (jump slots or memory bytes).
    pub off: i16,
    /// Signed 32-bit immediate.
    pub imm: i32,
}

impl RawInsn {
    /// Serializes to the 8-byte little-endian wire form.
    #[must_use]
    pub fn to_bytes(self) -> [u8; 8] {
        let mut b = [0u8; 8];
        b[0] = self.opcode;
        b[1] = (self.src << 4) | (self.dst & 0x0f);
        b[2..4].copy_from_slice(&self.off.to_le_bytes());
        b[4..8].copy_from_slice(&self.imm.to_le_bytes());
        b
    }

    /// Deserializes from the 8-byte little-endian wire form.
    #[must_use]
    pub fn from_bytes(b: [u8; 8]) -> RawInsn {
        RawInsn {
            opcode: b[0],
            dst: b[1] & 0x0f,
            src: b[1] >> 4,
            off: i16::from_le_bytes([b[2], b[3]]),
            imm: i32::from_le_bytes([b[4], b[5], b[6], b[7]]),
        }
    }

    /// Encodes a typed instruction into one or two raw slots.
    #[must_use]
    pub fn encode(insn: Insn) -> Vec<RawInsn> {
        match insn {
            Insn::Alu {
                width,
                op,
                dst,
                src,
            } => {
                let class = match width {
                    Width::W32 => CLASS_ALU,
                    Width::W64 => CLASS_ALU64,
                };
                // Neg has no source operand; canonicalize to the K form so
                // every typed spelling encodes (and round-trips) the same.
                let src = if op == AluOp::Neg { Src::Imm(0) } else { src };
                let (src_bit, src_reg, imm) = split_src(src);
                vec![RawInsn {
                    opcode: class | src_bit | (alu_code(op) << 4),
                    dst: dst.index() as u8,
                    src: src_reg,
                    off: 0,
                    imm,
                }]
            }
            Insn::LoadImm64 { dst, imm } => vec![
                RawInsn {
                    opcode: CLASS_LD | SIZE_DW | MODE_IMM,
                    dst: dst.index() as u8,
                    src: 0,
                    off: 0,
                    imm: imm as u32 as i32,
                },
                RawInsn {
                    opcode: 0,
                    dst: 0,
                    src: 0,
                    off: 0,
                    imm: (imm >> 32) as u32 as i32,
                },
            ],
            Insn::Load {
                size,
                dst,
                base,
                off,
            } => vec![RawInsn {
                opcode: CLASS_LDX | size_code(size) | MODE_MEM,
                dst: dst.index() as u8,
                src: base.index() as u8,
                off,
                imm: 0,
            }],
            Insn::Store {
                size,
                base,
                off,
                src,
            } => match src {
                Src::Reg(r) => vec![RawInsn {
                    opcode: CLASS_STX | size_code(size) | MODE_MEM,
                    dst: base.index() as u8,
                    src: r.index() as u8,
                    off,
                    imm: 0,
                }],
                Src::Imm(imm) => vec![RawInsn {
                    opcode: CLASS_ST | size_code(size) | MODE_MEM,
                    dst: base.index() as u8,
                    src: 0,
                    off,
                    imm,
                }],
            },
            Insn::Ja { off } => {
                vec![RawInsn {
                    opcode: CLASS_JMP,
                    dst: 0,
                    src: 0,
                    off,
                    imm: 0,
                }]
            }
            Insn::Jmp {
                width,
                op,
                dst,
                src,
                off,
            } => {
                let class = match width {
                    Width::W32 => CLASS_JMP32,
                    Width::W64 => CLASS_JMP,
                };
                let (src_bit, src_reg, imm) = split_src(src);
                vec![RawInsn {
                    opcode: class | src_bit | (jmp_code(op) << 4),
                    dst: dst.index() as u8,
                    src: src_reg,
                    off,
                    imm,
                }]
            }
            Insn::Call { helper } => vec![RawInsn {
                opcode: CLASS_JMP | (0x8 << 4),
                dst: 0,
                src: 0,
                off: 0,
                imm: helper as i32,
            }],
            Insn::Exit => {
                vec![RawInsn {
                    opcode: CLASS_JMP | (0x9 << 4),
                    dst: 0,
                    src: 0,
                    off: 0,
                    imm: 0,
                }]
            }
        }
    }

    /// Decodes a sequence of raw slots into typed instructions.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for unknown opcodes, register indices
    /// above 10, or a truncated `lddw` pair.
    pub fn decode_stream(slots: &[RawInsn]) -> Result<Vec<Insn>, DecodeError> {
        let mut out = Vec::with_capacity(slots.len());
        let mut i = 0;
        while i < slots.len() {
            let raw = slots[i];
            let insn = decode_one(raw, slots.get(i + 1).copied(), i)?;
            i += insn.slots();
            out.push(insn);
        }
        Ok(out)
    }
}

fn split_src(src: Src) -> (u8, u8, i32) {
    match src {
        Src::Reg(r) => (SRC_X, r.index() as u8, 0),
        Src::Imm(imm) => (SRC_K, 0, imm),
    }
}

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0x0,
        AluOp::Sub => 0x1,
        AluOp::Mul => 0x2,
        AluOp::Div => 0x3,
        AluOp::Or => 0x4,
        AluOp::And => 0x5,
        AluOp::Lsh => 0x6,
        AluOp::Rsh => 0x7,
        AluOp::Neg => 0x8,
        AluOp::Mod => 0x9,
        AluOp::Xor => 0xa,
        AluOp::Mov => 0xb,
        AluOp::Arsh => 0xc,
    }
}

fn alu_from_code(code: u8) -> Option<AluOp> {
    Some(match code {
        0x0 => AluOp::Add,
        0x1 => AluOp::Sub,
        0x2 => AluOp::Mul,
        0x3 => AluOp::Div,
        0x4 => AluOp::Or,
        0x5 => AluOp::And,
        0x6 => AluOp::Lsh,
        0x7 => AluOp::Rsh,
        0x8 => AluOp::Neg,
        0x9 => AluOp::Mod,
        0xa => AluOp::Xor,
        0xb => AluOp::Mov,
        0xc => AluOp::Arsh,
        _ => return None,
    })
}

fn jmp_code(op: JmpOp) -> u8 {
    match op {
        JmpOp::Eq => 0x1,
        JmpOp::Gt => 0x2,
        JmpOp::Ge => 0x3,
        JmpOp::Set => 0x4,
        JmpOp::Ne => 0x5,
        JmpOp::Sgt => 0x6,
        JmpOp::Sge => 0x7,
        JmpOp::Lt => 0xa,
        JmpOp::Le => 0xb,
        JmpOp::Slt => 0xc,
        JmpOp::Sle => 0xd,
    }
}

fn jmp_from_code(code: u8) -> Option<JmpOp> {
    Some(match code {
        0x1 => JmpOp::Eq,
        0x2 => JmpOp::Gt,
        0x3 => JmpOp::Ge,
        0x4 => JmpOp::Set,
        0x5 => JmpOp::Ne,
        0x6 => JmpOp::Sgt,
        0x7 => JmpOp::Sge,
        0xa => JmpOp::Lt,
        0xb => JmpOp::Le,
        0xc => JmpOp::Slt,
        0xd => JmpOp::Sle,
        _ => return None,
    })
}

fn size_code(size: MemSize) -> u8 {
    match size {
        MemSize::W => SIZE_W,
        MemSize::H => SIZE_H,
        MemSize::B => SIZE_B,
        MemSize::DW => SIZE_DW,
    }
}

fn size_from_code(code: u8) -> MemSize {
    match code & 0x18 {
        SIZE_W => MemSize::W,
        SIZE_H => MemSize::H,
        SIZE_B => MemSize::B,
        _ => MemSize::DW,
    }
}

fn reg(index: u8, slot: usize) -> Result<Reg, DecodeError> {
    Reg::new(index).ok_or(DecodeError::BadRegister { index, slot })
}

fn decode_one(raw: RawInsn, next: Option<RawInsn>, slot: usize) -> Result<Insn, DecodeError> {
    let class = raw.opcode & 0x07;
    match class {
        CLASS_ALU | CLASS_ALU64 => {
            let width = if class == CLASS_ALU64 {
                Width::W64
            } else {
                Width::W32
            };
            let op = alu_from_code(raw.opcode >> 4).ok_or(DecodeError::UnknownOpcode {
                opcode: raw.opcode,
                slot,
            })?;
            let src = if raw.opcode & SRC_X != 0 {
                Src::Reg(reg(raw.src, slot)?)
            } else {
                Src::Imm(raw.imm)
            };
            Ok(Insn::Alu {
                width,
                op,
                dst: reg(raw.dst, slot)?,
                src,
            })
        }
        CLASS_JMP | CLASS_JMP32 => {
            let code = raw.opcode >> 4;
            if class == CLASS_JMP {
                match code {
                    0x0 => return Ok(Insn::Ja { off: raw.off }),
                    0x8 => {
                        return Ok(Insn::Call {
                            helper: raw.imm as u32,
                        })
                    }
                    0x9 => return Ok(Insn::Exit),
                    _ => {}
                }
            }
            let width = if class == CLASS_JMP {
                Width::W64
            } else {
                Width::W32
            };
            let op = jmp_from_code(code).ok_or(DecodeError::UnknownOpcode {
                opcode: raw.opcode,
                slot,
            })?;
            let src = if raw.opcode & SRC_X != 0 {
                Src::Reg(reg(raw.src, slot)?)
            } else {
                Src::Imm(raw.imm)
            };
            Ok(Insn::Jmp {
                width,
                op,
                dst: reg(raw.dst, slot)?,
                src,
                off: raw.off,
            })
        }
        CLASS_LD => {
            if raw.opcode == CLASS_LD | SIZE_DW | MODE_IMM {
                let hi = next.ok_or(DecodeError::TruncatedLoadImm64 { slot })?;
                let imm = ((hi.imm as u32 as u64) << 32) | (raw.imm as u32 as u64);
                Ok(Insn::LoadImm64 {
                    dst: reg(raw.dst, slot)?,
                    imm,
                })
            } else {
                Err(DecodeError::UnknownOpcode {
                    opcode: raw.opcode,
                    slot,
                })
            }
        }
        CLASS_LDX => {
            if raw.opcode & 0xe0 != MODE_MEM {
                return Err(DecodeError::UnknownOpcode {
                    opcode: raw.opcode,
                    slot,
                });
            }
            Ok(Insn::Load {
                size: size_from_code(raw.opcode),
                dst: reg(raw.dst, slot)?,
                base: reg(raw.src, slot)?,
                off: raw.off,
            })
        }
        CLASS_ST | CLASS_STX => {
            if raw.opcode & 0xe0 != MODE_MEM {
                return Err(DecodeError::UnknownOpcode {
                    opcode: raw.opcode,
                    slot,
                });
            }
            let src = if class == CLASS_STX {
                Src::Reg(reg(raw.src, slot)?)
            } else {
                Src::Imm(raw.imm)
            };
            Ok(Insn::Store {
                size: size_from_code(raw.opcode),
                base: reg(raw.dst, slot)?,
                off: raw.off,
                src,
            })
        }
        _ => Err(DecodeError::UnknownOpcode {
            opcode: raw.opcode,
            slot,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insns() -> Vec<Insn> {
        vec![
            Insn::Alu {
                width: Width::W64,
                op: AluOp::Mov,
                dst: Reg::R0,
                src: Src::Imm(-7),
            },
            Insn::Alu {
                width: Width::W32,
                op: AluOp::Add,
                dst: Reg::R1,
                src: Src::Reg(Reg::R2),
            },
            Insn::Alu {
                width: Width::W64,
                op: AluOp::Neg,
                dst: Reg::R3,
                src: Src::Imm(0),
            },
            Insn::LoadImm64 {
                dst: Reg::R4,
                imm: 0xdead_beef_cafe_f00d,
            },
            Insn::Load {
                size: MemSize::H,
                dst: Reg::R5,
                base: Reg::R1,
                off: 12,
            },
            Insn::Store {
                size: MemSize::DW,
                base: Reg::R10,
                off: -8,
                src: Src::Reg(Reg::R0),
            },
            Insn::Store {
                size: MemSize::B,
                base: Reg::R10,
                off: -1,
                src: Src::Imm(255),
            },
            Insn::Ja { off: 2 },
            Insn::Jmp {
                width: Width::W64,
                op: JmpOp::Sgt,
                dst: Reg::R1,
                src: Src::Imm(100),
                off: -3,
            },
            Insn::Jmp {
                width: Width::W32,
                op: JmpOp::Set,
                dst: Reg::R2,
                src: Src::Reg(Reg::R3),
                off: 1,
            },
            Insn::Call { helper: 42 },
            Insn::Exit,
        ]
    }

    #[test]
    fn round_trip_typed_raw_typed() {
        let insns = sample_insns();
        let mut slots = Vec::new();
        for &i in &insns {
            slots.extend(RawInsn::encode(i));
        }
        let decoded = RawInsn::decode_stream(&slots).unwrap();
        assert_eq!(decoded, insns);
    }

    #[test]
    fn round_trip_bytes() {
        for &insn in &sample_insns() {
            for raw in RawInsn::encode(insn) {
                assert_eq!(RawInsn::from_bytes(raw.to_bytes()), raw);
            }
        }
    }

    #[test]
    fn known_opcodes_match_linux_values() {
        // Spot-check against the opcode values documented for Linux eBPF.
        let mov64_k = RawInsn::encode(Insn::Alu {
            width: Width::W64,
            op: AluOp::Mov,
            dst: Reg::R0,
            src: Src::Imm(1),
        })[0];
        assert_eq!(mov64_k.opcode, 0xb7);
        let add64_x = RawInsn::encode(Insn::Alu {
            width: Width::W64,
            op: AluOp::Add,
            dst: Reg::R1,
            src: Src::Reg(Reg::R2),
        })[0];
        assert_eq!(add64_x.opcode, 0x0f);
        let exit = RawInsn::encode(Insn::Exit)[0];
        assert_eq!(exit.opcode, 0x95);
        let call = RawInsn::encode(Insn::Call { helper: 1 })[0];
        assert_eq!(call.opcode, 0x85);
        let ldxw = RawInsn::encode(Insn::Load {
            size: MemSize::W,
            dst: Reg::R0,
            base: Reg::R1,
            off: 0,
        })[0];
        assert_eq!(ldxw.opcode, 0x61);
        let stxdw = RawInsn::encode(Insn::Store {
            size: MemSize::DW,
            base: Reg::R10,
            off: -8,
            src: Src::Reg(Reg::R1),
        })[0];
        assert_eq!(stxdw.opcode, 0x7b);
        let lddw = RawInsn::encode(Insn::LoadImm64 {
            dst: Reg::R1,
            imm: 0,
        });
        assert_eq!(lddw[0].opcode, 0x18);
        let jlt = RawInsn::encode(Insn::Jmp {
            width: Width::W64,
            op: JmpOp::Lt,
            dst: Reg::R1,
            src: Src::Imm(5),
            off: 1,
        })[0];
        assert_eq!(jlt.opcode, 0xa5);
    }

    #[test]
    fn decode_rejects_garbage() {
        let bad = RawInsn {
            opcode: 0xff,
            ..RawInsn::default()
        };
        assert!(matches!(
            RawInsn::decode_stream(&[bad]),
            Err(DecodeError::UnknownOpcode {
                opcode: 0xff,
                slot: 0
            })
        ));
        // Truncated lddw.
        let lddw_first = RawInsn {
            opcode: 0x18,
            ..RawInsn::default()
        };
        assert!(matches!(
            RawInsn::decode_stream(&[lddw_first]),
            Err(DecodeError::TruncatedLoadImm64 { slot: 0 })
        ));
        // Bad register index.
        let bad_reg = RawInsn {
            opcode: 0xb7,
            dst: 12,
            ..RawInsn::default()
        };
        assert!(matches!(
            RawInsn::decode_stream(&[bad_reg]),
            Err(DecodeError::BadRegister { index: 12, slot: 0 })
        ));
    }

    #[test]
    fn negative_imm_survives_round_trip() {
        let insn = Insn::Alu {
            width: Width::W64,
            op: AluOp::Mov,
            dst: Reg::R0,
            src: Src::Imm(i32::MIN),
        };
        let slots = RawInsn::encode(insn);
        assert_eq!(RawInsn::decode_stream(&slots).unwrap()[0], insn);
        // LoadImm64 with the sign bit set in both halves.
        let big = Insn::LoadImm64 {
            dst: Reg::R9,
            imm: u64::MAX,
        };
        let slots = RawInsn::encode(big);
        assert_eq!(RawInsn::decode_stream(&slots).unwrap()[0], big);
    }
}
