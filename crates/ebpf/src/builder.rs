//! A fluent, label-aware builder for constructing programs in code —
//! the programmatic companion to the textual assembler.

use std::collections::HashMap;

use crate::error::ProgramError;
use crate::insn::{AluOp, Insn, JmpOp, MemSize, Src, Width};
use crate::program::Program;
use crate::reg::Reg;

/// A symbolic jump target used while building.
#[derive(Clone, Debug)]
enum Target {
    Label(String),
    Offset(i16),
}

/// Builds a [`Program`] instruction by instruction, with named labels
/// resolved on [`ProgramBuilder::build`].
///
/// # Examples
///
/// ```
/// use ebpf::{builder::ProgramBuilder, Reg, Vm};
///
/// let prog = ProgramBuilder::new()
///     .mov64_imm(Reg::R0, 0)
///     .mov64_imm(Reg::R3, 10)
///     .label("loop")
///     .alu64_reg(ebpf::AluOp::Add, Reg::R0, Reg::R3)
///     .alu64_imm(ebpf::AluOp::Sub, Reg::R3, 1)
///     .jmp_imm(ebpf::JmpOp::Ne, Reg::R3, 0, "loop")
///     .exit()
///     .build()?;
/// assert_eq!(Vm::new().run(&prog, &mut [])?, 55);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insns: Vec<(Insn, Option<Target>)>,
    labels: HashMap<String, usize>, // label -> slot index
    slot: usize,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics on duplicate label names (a programming error at the call
    /// site, not an input error).
    #[must_use]
    pub fn label(mut self, name: &str) -> Self {
        let prev = self.labels.insert(name.to_string(), self.slot);
        assert!(prev.is_none(), "duplicate label {name:?}");
        self
    }

    fn push(mut self, insn: Insn, target: Option<Target>) -> Self {
        self.slot += insn.slots();
        self.insns.push((insn, target));
        self
    }

    /// `dst = imm` (64-bit).
    #[must_use]
    pub fn mov64_imm(self, dst: Reg, imm: i32) -> Self {
        self.push(
            Insn::Alu {
                width: Width::W64,
                op: AluOp::Mov,
                dst,
                src: Src::Imm(imm),
            },
            None,
        )
    }

    /// `dst = src` (64-bit).
    #[must_use]
    pub fn mov64_reg(self, dst: Reg, src: Reg) -> Self {
        self.push(
            Insn::Alu {
                width: Width::W64,
                op: AluOp::Mov,
                dst,
                src: Src::Reg(src),
            },
            None,
        )
    }

    /// `dst = map N` (map-handle load: a tagged `lddw`, see
    /// [`crate::helpers::map_handle_imm`]).
    #[must_use]
    pub fn map_handle(self, dst: Reg, map: u32) -> Self {
        self.load_imm64(dst, crate::helpers::map_handle_imm(map))
    }

    /// `dst = imm ll` (full 64-bit immediate).
    #[must_use]
    pub fn load_imm64(self, dst: Reg, imm: u64) -> Self {
        self.push(Insn::LoadImm64 { dst, imm }, None)
    }

    /// `dst op= imm` (64-bit).
    #[must_use]
    pub fn alu64_imm(self, op: AluOp, dst: Reg, imm: i32) -> Self {
        self.push(
            Insn::Alu {
                width: Width::W64,
                op,
                dst,
                src: Src::Imm(imm),
            },
            None,
        )
    }

    /// `dst op= src` (64-bit).
    #[must_use]
    pub fn alu64_reg(self, op: AluOp, dst: Reg, src: Reg) -> Self {
        self.push(
            Insn::Alu {
                width: Width::W64,
                op,
                dst,
                src: Src::Reg(src),
            },
            None,
        )
    }

    /// `wdst op= imm` (32-bit, zero-extending).
    #[must_use]
    pub fn alu32_imm(self, op: AluOp, dst: Reg, imm: i32) -> Self {
        self.push(
            Insn::Alu {
                width: Width::W32,
                op,
                dst,
                src: Src::Imm(imm),
            },
            None,
        )
    }

    /// `wdst op= wsrc` (32-bit, zero-extending).
    #[must_use]
    pub fn alu32_reg(self, op: AluOp, dst: Reg, src: Reg) -> Self {
        self.push(
            Insn::Alu {
                width: Width::W32,
                op,
                dst,
                src: Src::Reg(src),
            },
            None,
        )
    }

    /// `dst = *(size *)(base + off)`.
    #[must_use]
    pub fn load(self, size: MemSize, dst: Reg, base: Reg, off: i16) -> Self {
        self.push(
            Insn::Load {
                size,
                dst,
                base,
                off,
            },
            None,
        )
    }

    /// `*(size *)(base + off) = src`.
    #[must_use]
    pub fn store_reg(self, size: MemSize, base: Reg, off: i16, src: Reg) -> Self {
        self.push(
            Insn::Store {
                size,
                base,
                off,
                src: Src::Reg(src),
            },
            None,
        )
    }

    /// `*(size *)(base + off) = imm`.
    #[must_use]
    pub fn store_imm(self, size: MemSize, base: Reg, off: i16, imm: i32) -> Self {
        self.push(
            Insn::Store {
                size,
                base,
                off,
                src: Src::Imm(imm),
            },
            None,
        )
    }

    /// `goto label`.
    #[must_use]
    pub fn jump(self, label: &str) -> Self {
        self.push(Insn::Ja { off: 0 }, Some(Target::Label(label.to_string())))
    }

    /// `if dst op imm goto label`.
    #[must_use]
    pub fn jmp_imm(self, op: JmpOp, dst: Reg, imm: i32, label: &str) -> Self {
        self.push(
            Insn::Jmp {
                width: Width::W64,
                op,
                dst,
                src: Src::Imm(imm),
                off: 0,
            },
            Some(Target::Label(label.to_string())),
        )
    }

    /// `if dst op src goto label`.
    #[must_use]
    pub fn jmp_reg(self, op: JmpOp, dst: Reg, src: Reg, label: &str) -> Self {
        self.push(
            Insn::Jmp {
                width: Width::W64,
                op,
                dst,
                src: Src::Reg(src),
                off: 0,
            },
            Some(Target::Label(label.to_string())),
        )
    }

    /// `call helper`.
    #[must_use]
    pub fn call(self, helper: u32) -> Self {
        self.push(Insn::Call { helper }, None)
    }

    /// `exit`.
    #[must_use]
    pub fn exit(self) -> Self {
        self.push(Insn::Exit, None)
    }

    /// Appends a pre-constructed instruction with an explicit numeric
    /// offset (escape hatch).
    #[must_use]
    pub fn raw(self, insn: Insn) -> Self {
        match insn {
            Insn::Ja { off } => self.push(Insn::Ja { off: 0 }, Some(Target::Offset(off))),
            Insn::Jmp { off, .. } => {
                let t = Target::Offset(off);
                self.push(insn, Some(t))
            }
            _ => self.push(insn, None),
        }
    }

    /// Resolves labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnknownLabel`] for a jump to an undefined
    /// label, [`BuildError::LabelOutOfRange`] when an offset overflows
    /// `i16`, or the underlying [`ProgramError`] from validation.
    pub fn build(self) -> Result<Program, BuildError> {
        let mut resolved = Vec::with_capacity(self.insns.len());
        let mut slot = 0usize;
        for (insn, target) in self.insns {
            let next_slot = slot + insn.slots();
            let off = match target {
                None => None,
                Some(Target::Offset(off)) => Some(off),
                Some(Target::Label(name)) => {
                    let dest = *self
                        .labels
                        .get(&name)
                        .ok_or(BuildError::UnknownLabel { name: name.clone() })?;
                    Some(
                        i16::try_from(dest as i64 - next_slot as i64)
                            .map_err(|_| BuildError::LabelOutOfRange { name })?,
                    )
                }
            };
            let insn = match (insn, off) {
                (Insn::Ja { .. }, Some(off)) => Insn::Ja { off },
                (
                    Insn::Jmp {
                        width,
                        op,
                        dst,
                        src,
                        ..
                    },
                    Some(off),
                ) => Insn::Jmp {
                    width,
                    op,
                    dst,
                    src,
                    off,
                },
                (other, _) => other,
            };
            slot = next_slot;
            resolved.push(insn);
        }
        Ok(Program::new(resolved)?)
    }
}

/// Error from [`ProgramBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A jump referenced a label that was never defined.
    UnknownLabel {
        /// The missing label.
        name: String,
    },
    /// A label resolved to an offset that does not fit in `i16`.
    LabelOutOfRange {
        /// The offending label.
        name: String,
    },
    /// Label resolution succeeded but program validation failed.
    Invalid(ProgramError),
}

impl core::fmt::Display for BuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BuildError::UnknownLabel { name } => write!(f, "unknown label {name:?}"),
            BuildError::LabelOutOfRange { name } => {
                write!(f, "label {name:?} is out of jump range")
            }
            BuildError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ProgramError> for BuildError {
    fn from(e: ProgramError) -> BuildError {
        BuildError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::Vm;

    #[test]
    fn builds_loop_program() {
        let prog = ProgramBuilder::new()
            .mov64_imm(Reg::R0, 0)
            .mov64_imm(Reg::R3, 5)
            .label("top")
            .alu64_reg(AluOp::Add, Reg::R0, Reg::R3)
            .alu64_imm(AluOp::Sub, Reg::R3, 1)
            .jmp_imm(JmpOp::Ne, Reg::R3, 0, "top")
            .exit()
            .build()
            .unwrap();
        assert_eq!(Vm::new().run(&prog, &mut []).unwrap(), 15);
    }

    #[test]
    fn forward_labels_and_lddw_slots() {
        let prog = ProgramBuilder::new()
            .load_imm64(Reg::R1, u64::MAX)
            .jmp_imm(JmpOp::Eq, Reg::R1, -1, "yes")
            .mov64_imm(Reg::R0, 0)
            .exit()
            .label("yes")
            .mov64_imm(Reg::R0, 1)
            .exit()
            .build()
            .unwrap();
        assert_eq!(Vm::new().run(&prog, &mut []).unwrap(), 1);
    }

    #[test]
    fn memory_helpers() {
        let prog = ProgramBuilder::new()
            .store_imm(MemSize::W, Reg::R10, -4, 1234)
            .load(MemSize::W, Reg::R0, Reg::R10, -4)
            .exit()
            .build()
            .unwrap();
        assert_eq!(Vm::new().run(&prog, &mut []).unwrap(), 1234);
    }

    #[test]
    fn unknown_label_reported() {
        let err = ProgramBuilder::new()
            .jump("nowhere")
            .exit()
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::UnknownLabel {
                name: "nowhere".into()
            }
        );
    }

    #[test]
    fn validation_errors_propagate() {
        let err = ProgramBuilder::new()
            .mov64_imm(Reg::R0, 0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::Invalid(ProgramError::FallsThrough)
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_labels_panic() {
        let _ = ProgramBuilder::new().label("a").label("a");
    }

    #[test]
    fn matches_assembler_output() {
        let built = ProgramBuilder::new()
            .mov64_imm(Reg::R0, 7)
            .alu32_imm(AluOp::Mul, Reg::R0, 6)
            .exit()
            .build()
            .unwrap();
        let asm = crate::asm::assemble("r0 = 7\nw0 *= 6\nexit").unwrap();
        assert_eq!(built, asm);
    }
}
