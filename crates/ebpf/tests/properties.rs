//! Property-based tests for the eBPF substrate: encode/decode round
//! trips over arbitrary instructions, and VM ALU semantics against a
//! reference model.

use ebpf::{asm, AluOp, Insn, JmpOp, MemSize, Program, RawInsn, Reg, Src, Vm, Width};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..=10).prop_map(|i| Reg::new(i).unwrap())
}

fn any_writable_reg() -> impl Strategy<Value = Reg> {
    (0u8..=9).prop_map(|i| Reg::new(i).unwrap())
}

fn any_width() -> impl Strategy<Value = Width> {
    prop_oneof![Just(Width::W32), Just(Width::W64)]
}

fn any_size() -> impl Strategy<Value = MemSize> {
    prop_oneof![Just(MemSize::B), Just(MemSize::H), Just(MemSize::W), Just(MemSize::DW)]
}

fn any_src() -> impl Strategy<Value = Src> {
    prop_oneof![any_reg().prop_map(Src::Reg), any::<i32>().prop_map(Src::Imm)]
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Lsh),
        Just(AluOp::Rsh),
        Just(AluOp::Mod),
        Just(AluOp::Xor),
        Just(AluOp::Mov),
        Just(AluOp::Arsh),
    ]
}

fn any_jmp_op() -> impl Strategy<Value = JmpOp> {
    prop_oneof![
        Just(JmpOp::Eq),
        Just(JmpOp::Ne),
        Just(JmpOp::Gt),
        Just(JmpOp::Ge),
        Just(JmpOp::Lt),
        Just(JmpOp::Le),
        Just(JmpOp::Sgt),
        Just(JmpOp::Sge),
        Just(JmpOp::Slt),
        Just(JmpOp::Sle),
        Just(JmpOp::Set),
    ]
}

/// Any single instruction (jump offsets zero so any program shape remains
/// valid when wrapped for the round-trip tests).
fn any_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (any_width(), any_alu_op(), any_writable_reg(), any_src())
            .prop_map(|(width, op, dst, src)| Insn::Alu { width, op, dst, src }),
        (any_writable_reg(), any::<u64>()).prop_map(|(dst, imm)| Insn::LoadImm64 { dst, imm }),
        (any_size(), any_writable_reg(), any_reg(), any::<i16>())
            .prop_map(|(size, dst, base, off)| Insn::Load { size, dst, base, off }),
        (any_size(), any_reg(), any::<i16>(), any_src())
            .prop_map(|(size, base, off, src)| Insn::Store { size, base, off, src }),
        (any_width(), any_jmp_op(), any_reg(), any_src())
            .prop_map(|(width, op, dst, src)| Insn::Jmp { width, op, dst, src, off: 0 }),
        any::<u32>().prop_map(|helper| Insn::Call { helper }),
    ]
}

proptest! {
    #[test]
    fn raw_encoding_round_trips(insns in proptest::collection::vec(any_insn(), 1..24)) {
        let mut slots = Vec::new();
        for &i in &insns {
            slots.extend(RawInsn::encode(i));
        }
        let decoded = RawInsn::decode_stream(&slots).unwrap();
        prop_assert_eq!(decoded, insns);
    }

    #[test]
    fn byte_encoding_round_trips(insn in any_insn()) {
        for raw in RawInsn::encode(insn) {
            prop_assert_eq!(RawInsn::from_bytes(raw.to_bytes()), raw);
        }
    }

    #[test]
    fn program_text_round_trips(mut insns in proptest::collection::vec(any_insn(), 1..16)) {
        insns.push(Insn::Exit);
        let prog = Program::new(insns).unwrap();
        let text = prog.disassemble();
        let back = asm::assemble(&text).unwrap();
        prop_assert_eq!(back, prog);
    }

    #[test]
    fn vm_alu64_matches_reference(a in any::<u64>(), b in any::<u64>()) {
        // Execute `r0 = a; r3 = b; r0 op= r3; exit` for every op and
        // compare with the reference semantics.
        let cases: Vec<(AluOp, u64)> = vec![
            (AluOp::Add, a.wrapping_add(b)),
            (AluOp::Sub, a.wrapping_sub(b)),
            (AluOp::Mul, a.wrapping_mul(b)),
            (AluOp::Div, if b == 0 { 0 } else { a / b }),
            (AluOp::Mod, if b == 0 { a } else { a % b }),
            (AluOp::And, a & b),
            (AluOp::Or, a | b),
            (AluOp::Xor, a ^ b),
            (AluOp::Lsh, a.wrapping_shl(b as u32 & 63)),
            (AluOp::Rsh, a.wrapping_shr(b as u32 & 63)),
            (AluOp::Arsh, ((a as i64).wrapping_shr(b as u32 & 63)) as u64),
        ];
        let mut vm = Vm::new();
        for (op, expect) in cases {
            let prog = Program::new(vec![
                Insn::LoadImm64 { dst: Reg::R0, imm: a },
                Insn::LoadImm64 { dst: Reg::R3, imm: b },
                Insn::Alu { width: Width::W64, op, dst: Reg::R0, src: Src::Reg(Reg::R3) },
                Insn::Exit,
            ]).unwrap();
            prop_assert_eq!(vm.run(&prog, &mut []).unwrap(), expect, "{:?}", op);
        }
    }

    #[test]
    fn vm_jumps_match_reference(a in any::<u64>(), b in any::<u64>()) {
        let mut vm = Vm::new();
        for op in JmpOp::ALL {
            for width in [Width::W32, Width::W64] {
                let prog = Program::new(vec![
                    Insn::LoadImm64 { dst: Reg::R2, imm: a },
                    Insn::LoadImm64 { dst: Reg::R3, imm: b },
                    Insn::Jmp { width, op, dst: Reg::R2, src: Src::Reg(Reg::R3), off: 2 },
                    Insn::Alu { width: Width::W64, op: AluOp::Mov, dst: Reg::R0, src: Src::Imm(0) },
                    Insn::Exit,
                    Insn::Alu { width: Width::W64, op: AluOp::Mov, dst: Reg::R0, src: Src::Imm(1) },
                    Insn::Exit,
                ]).unwrap();
                let expect = match width {
                    Width::W64 => op.eval64(a, b),
                    Width::W32 => op.eval32(a, b),
                };
                prop_assert_eq!(vm.run(&prog, &mut []).unwrap() == 1, expect, "{:?}/{:?}", op, width);
            }
        }
    }

    #[test]
    fn vm_memory_round_trips(value in any::<u64>(), size in any_size(), slot in 1u8..=64) {
        // Store then load at a random aligned stack slot.
        let off = -8 * i16::from(slot);
        let prog = Program::new(vec![
            Insn::LoadImm64 { dst: Reg::R1, imm: value },
            Insn::Store { size, base: Reg::R10, off, src: Src::Reg(Reg::R1) },
            Insn::Load { size, dst: Reg::R0, base: Reg::R10, off },
            Insn::Exit,
        ]).unwrap();
        let got = Vm::new().run(&prog, &mut []).unwrap();
        let masked = if size.bytes() == 8 { value } else { value & ((1 << (size.bytes() * 8)) - 1) };
        prop_assert_eq!(got, masked);
    }
}
