//! Randomized property tests for the eBPF substrate: encode/decode round
//! trips over arbitrary instructions, and VM ALU semantics against a
//! reference model. Driven by the workspace's deterministic SplitMix64
//! stream.

// Explicit BPF division semantics (`x / 0 = 0`, `x % 0 = x`) throughout.
#![allow(clippy::manual_checked_ops)]
use domain::rng::SplitMix64;
use ebpf::{asm, AluOp, Insn, JmpOp, MemSize, Program, RawInsn, Reg, Src, Vm, Width};

const CASES: u32 = 256;

fn any_reg(rng: &mut SplitMix64) -> Reg {
    Reg::new(rng.below(11) as u8).unwrap()
}

fn any_writable_reg(rng: &mut SplitMix64) -> Reg {
    Reg::new(rng.below(10) as u8).unwrap()
}

fn any_width(rng: &mut SplitMix64) -> Width {
    if rng.coin() {
        Width::W32
    } else {
        Width::W64
    }
}

fn any_size(rng: &mut SplitMix64) -> MemSize {
    [MemSize::B, MemSize::H, MemSize::W, MemSize::DW][rng.below(4) as usize]
}

fn any_src(rng: &mut SplitMix64) -> Src {
    if rng.coin() {
        Src::Reg(any_reg(rng))
    } else {
        Src::Imm(rng.next_i32())
    }
}

fn any_alu_op(rng: &mut SplitMix64) -> AluOp {
    // Neg is excluded as in the original strategy (its canonical form has
    // no source operand).
    [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Or,
        AluOp::And,
        AluOp::Lsh,
        AluOp::Rsh,
        AluOp::Mod,
        AluOp::Xor,
        AluOp::Mov,
        AluOp::Arsh,
    ][rng.below(12) as usize]
}

fn any_jmp_op(rng: &mut SplitMix64) -> JmpOp {
    [
        JmpOp::Eq,
        JmpOp::Ne,
        JmpOp::Gt,
        JmpOp::Ge,
        JmpOp::Lt,
        JmpOp::Le,
        JmpOp::Sgt,
        JmpOp::Sge,
        JmpOp::Slt,
        JmpOp::Sle,
        JmpOp::Set,
    ][rng.below(11) as usize]
}

/// Any single instruction (jump offsets zero so any program shape remains
/// valid when wrapped for the round-trip tests).
fn any_insn(rng: &mut SplitMix64) -> Insn {
    match rng.below(6) {
        0 => Insn::Alu {
            width: any_width(rng),
            op: any_alu_op(rng),
            dst: any_writable_reg(rng),
            src: any_src(rng),
        },
        1 => Insn::LoadImm64 {
            dst: any_writable_reg(rng),
            imm: rng.next_u64(),
        },
        2 => Insn::Load {
            size: any_size(rng),
            dst: any_writable_reg(rng),
            base: any_reg(rng),
            off: rng.next_u64() as i16,
        },
        3 => Insn::Store {
            size: any_size(rng),
            base: any_reg(rng),
            off: rng.next_u64() as i16,
            src: any_src(rng),
        },
        4 => Insn::Jmp {
            width: any_width(rng),
            op: any_jmp_op(rng),
            dst: any_reg(rng),
            src: any_src(rng),
            off: 0,
        },
        _ => Insn::Call {
            helper: rng.next_u32(),
        },
    }
}

#[test]
fn raw_encoding_round_trips() {
    let mut rng = SplitMix64::new(0x50);
    for _ in 0..CASES {
        let insns: Vec<Insn> = (0..1 + rng.below(23)).map(|_| any_insn(&mut rng)).collect();
        let mut slots = Vec::new();
        for &i in &insns {
            slots.extend(RawInsn::encode(i));
        }
        let decoded = RawInsn::decode_stream(&slots).unwrap();
        assert_eq!(decoded, insns);
    }
}

#[test]
fn byte_encoding_round_trips() {
    let mut rng = SplitMix64::new(0x51);
    for _ in 0..CASES {
        let insn = any_insn(&mut rng);
        for raw in RawInsn::encode(insn) {
            assert_eq!(RawInsn::from_bytes(raw.to_bytes()), raw);
        }
    }
}

#[test]
fn program_text_round_trips() {
    let mut rng = SplitMix64::new(0x52);
    for _ in 0..CASES {
        let mut insns: Vec<Insn> = (0..1 + rng.below(15)).map(|_| any_insn(&mut rng)).collect();
        insns.push(Insn::Exit);
        let prog = Program::new(insns).unwrap();
        let text = prog.disassemble();
        let back = asm::assemble(&text).unwrap();
        assert_eq!(back, prog);
    }
}

#[test]
fn vm_alu64_matches_reference() {
    let mut rng = SplitMix64::new(0x53);
    let mut vm = Vm::new();
    for _ in 0..64 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        // Execute `r0 = a; r3 = b; r0 op= r3; exit` for every op and
        // compare with the reference semantics.
        let cases: Vec<(AluOp, u64)> = vec![
            (AluOp::Add, a.wrapping_add(b)),
            (AluOp::Sub, a.wrapping_sub(b)),
            (AluOp::Mul, a.wrapping_mul(b)),
            (AluOp::Div, if b == 0 { 0 } else { a / b }),
            (AluOp::Mod, if b == 0 { a } else { a % b }),
            (AluOp::And, a & b),
            (AluOp::Or, a | b),
            (AluOp::Xor, a ^ b),
            (AluOp::Lsh, a.wrapping_shl(b as u32 & 63)),
            (AluOp::Rsh, a.wrapping_shr(b as u32 & 63)),
            (AluOp::Arsh, ((a as i64).wrapping_shr(b as u32 & 63)) as u64),
        ];
        for (op, expect) in cases {
            let prog = Program::new(vec![
                Insn::LoadImm64 {
                    dst: Reg::R0,
                    imm: a,
                },
                Insn::LoadImm64 {
                    dst: Reg::R3,
                    imm: b,
                },
                Insn::Alu {
                    width: Width::W64,
                    op,
                    dst: Reg::R0,
                    src: Src::Reg(Reg::R3),
                },
                Insn::Exit,
            ])
            .unwrap();
            assert_eq!(vm.run(&prog, &mut []).unwrap(), expect, "{op:?}");
        }
    }
}

#[test]
fn vm_jumps_match_reference() {
    let mut rng = SplitMix64::new(0x54);
    let mut vm = Vm::new();
    for _ in 0..32 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        for op in JmpOp::ALL {
            for width in [Width::W32, Width::W64] {
                let prog = Program::new(vec![
                    Insn::LoadImm64 {
                        dst: Reg::R2,
                        imm: a,
                    },
                    Insn::LoadImm64 {
                        dst: Reg::R3,
                        imm: b,
                    },
                    Insn::Jmp {
                        width,
                        op,
                        dst: Reg::R2,
                        src: Src::Reg(Reg::R3),
                        off: 2,
                    },
                    Insn::Alu {
                        width: Width::W64,
                        op: AluOp::Mov,
                        dst: Reg::R0,
                        src: Src::Imm(0),
                    },
                    Insn::Exit,
                    Insn::Alu {
                        width: Width::W64,
                        op: AluOp::Mov,
                        dst: Reg::R0,
                        src: Src::Imm(1),
                    },
                    Insn::Exit,
                ])
                .unwrap();
                let expect = match width {
                    Width::W64 => op.eval64(a, b),
                    Width::W32 => op.eval32(a, b),
                };
                assert_eq!(
                    vm.run(&prog, &mut []).unwrap() == 1,
                    expect,
                    "{op:?}/{width:?}"
                );
            }
        }
    }
}

#[test]
fn vm_memory_round_trips() {
    let mut rng = SplitMix64::new(0x55);
    for _ in 0..CASES {
        // Store then load at a random aligned stack slot.
        let value = rng.next_u64();
        let size = any_size(&mut rng);
        let slot = 1 + rng.below(64) as i16;
        let off = -8 * slot;
        let prog = Program::new(vec![
            Insn::LoadImm64 {
                dst: Reg::R1,
                imm: value,
            },
            Insn::Store {
                size,
                base: Reg::R10,
                off,
                src: Src::Reg(Reg::R1),
            },
            Insn::Load {
                size,
                dst: Reg::R0,
                base: Reg::R10,
                off,
            },
            Insn::Exit,
        ])
        .unwrap();
        let got = Vm::new().run(&prog, &mut []).unwrap();
        let masked = if size.bytes() == 8 {
            value
        } else {
            value & ((1 << (size.bytes() * 8)) - 1)
        };
        assert_eq!(got, masked);
    }
}
