//! The Regehr–Duongsaa abstract multiplication (`bitwise_mul`, Listing 5 of
//! the paper) in three renderings: the paper's machine-arithmetic-optimized
//! form, the verbatim naive form, and a fully ripple-composed form.

use crate::ripple::ripple_add;
use tnum::{Tnum, Trit};

/// `bitwise_mul` with the paper's machine-arithmetic optimization (§IV):
/// when trit `i` of `P` is unknown, the "kill all certain-1 trits of `Q`"
/// inner loop of Listing 5 is replaced by the single tnum construction
/// `(0, Q.value | Q.mask)`.
///
/// Long multiplication: for each trit of `P`, form a partial product
/// (`0`, `Q`, or killed-`Q`), left-shift it into place, and accumulate with
/// `tnum_add`. 64 abstract additions of *mixed* tnums — this is the
/// precision and speed baseline `our_mul` beats (§IV-A/B).
///
/// # Examples
///
/// ```
/// use bitwise_domain::bitwise_mul;
/// use tnum::Tnum;
/// let p: Tnum = "x01".parse()?;
/// let q: Tnum = "x10".parse()?;
/// let r = bitwise_mul(p, q);
/// // Sound: all four concrete products are contained.
/// for x in p.concretize() {
///     for y in q.concretize() {
///         assert!(r.contains(x * y));
///     }
/// }
/// # Ok::<(), tnum::ParseTnumError>(())
/// ```
#[must_use]
pub fn bitwise_mul(p: Tnum, q: Tnum) -> Tnum {
    long_mul(p, q, Tnum::add, kill_fast)
}

/// Listing 5 verbatim: the kill step iterates over the trits of `Q` and
/// sets each certain-1 trit to unknown, one at a time.
///
/// Semantically identical to [`bitwise_mul`]; kept as the performance
/// baseline the paper measured at ~4921 cycles before optimizing (§IV-B).
#[must_use]
pub fn bitwise_mul_naive(p: Tnum, q: Tnum) -> Tnum {
    long_mul(p, q, Tnum::add, kill_naive)
}

/// The fully composed Regehr–Duongsaa multiplication: identical partial
/// products, but the accumulation uses the O(n) [`ripple_add`] instead of
/// the kernel's O(1) `tnum_add`, giving the original O(n²) construction.
///
/// Produces the same tnums as [`bitwise_mul`] (ripple addition is optimal,
/// matching `tnum_add`); only the cost differs.
#[must_use]
pub fn ripple_mul(p: Tnum, q: Tnum) -> Tnum {
    long_mul(p, q, ripple_add, kill_fast)
}

fn long_mul(
    p: Tnum,
    q: Tnum,
    add: impl Fn(Tnum, Tnum) -> Tnum,
    kill: impl Fn(Tnum) -> Tnum,
) -> Tnum {
    let mut sum = Tnum::ZERO;
    for i in 0..tnum::BITS {
        let product = match p.trit(i) {
            // Bit position i of tnum P is a certain 0.
            Trit::Zero => Tnum::ZERO,
            // Bit position i of tnum P is a certain 1.
            Trit::One => q,
            // Bit position i of tnum P is uncertain.
            Trit::Unknown => kill(q),
        };
        if product != Tnum::ZERO {
            sum = add(sum, product.lshift(i));
        }
    }
    sum
}

/// Kill via machine arithmetic: every possibly-set bit becomes unknown.
fn kill_fast(q: Tnum) -> Tnum {
    Tnum::masked(0, q.value() | q.mask())
}

/// Kill trit-by-trit, exactly as written in Listing 5.
fn kill_naive(mut q: Tnum) -> Tnum {
    for j in 0..tnum::BITS {
        if q.trit(j) == Trit::One {
            q = q.with_trit(j, Trit::Unknown);
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnum::enumerate::tnums;

    #[test]
    fn all_variants_agree_exhaustive_w4() {
        for a in tnums(4) {
            for b in tnums(4) {
                let fast = bitwise_mul(a, b);
                assert_eq!(fast, bitwise_mul_naive(a, b), "{a} * {b}");
                assert_eq!(fast, ripple_mul(a, b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn bitwise_mul_sound_exhaustive_w4() {
        for a in tnums(4) {
            for b in tnums(4) {
                let r = bitwise_mul(a, b).truncate(4);
                for x in a.concretize() {
                    for y in b.concretize() {
                        assert!(
                            r.contains(x.wrapping_mul(y) & 0xf),
                            "{a}*{b} missing {x}*{y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn kill_makes_every_possible_bit_unknown() {
        let q: Tnum = "1x0".parse().unwrap();
        let killed = kill_fast(q);
        assert_eq!(killed.to_bin_string(3), "xx0");
        assert_eq!(kill_naive(q), killed);
        // The killed tnum contains zero and everything q contained (Lemma 8).
        assert!(killed.contains(0));
        for x in q.concretize() {
            assert!(killed.contains(x));
        }
    }

    #[test]
    fn constants_multiply_exactly() {
        assert_eq!(
            bitwise_mul(Tnum::constant(6), Tnum::constant(7)),
            Tnum::constant(42)
        );
        assert_eq!(bitwise_mul(Tnum::UNKNOWN, Tnum::ZERO), Tnum::ZERO);
        assert_eq!(bitwise_mul(Tnum::ZERO, Tnum::UNKNOWN), Tnum::ZERO);
    }

    #[test]
    fn our_mul_never_loses_to_bitwise_mul_when_comparable_w5() {
        // §IV-A: our_mul is more precise than bitwise_mul in the vast
        // majority of differing cases. At small widths, verify the weaker
        // invariant used by Fig. 4: count wins per algorithm.
        let mut ours = 0u32;
        let mut theirs = 0u32;
        for a in tnums(5) {
            for b in tnums(5) {
                let bw = bitwise_mul(a, b).truncate(5);
                let om = a.mul(b).truncate(5);
                if bw == om {
                    continue;
                }
                if om.is_strict_subset_of(bw) {
                    ours += 1;
                } else if bw.is_strict_subset_of(om) {
                    theirs += 1;
                }
            }
        }
        assert!(
            ours > theirs,
            "our_mul wins {ours}, bitwise_mul wins {theirs}"
        );
    }
}
