//! Three-valued (Kleene) logic over [`Trit`]s.
//!
//! Each connective returns the strongest trit consistent with every
//! assignment of its unknown inputs — e.g. `and(Zero, Unknown) = Zero`
//! because `0 & b = 0` for both values of `b`. These are the per-bit
//! transfer functions from which the Regehr–Duongsaa ripple-carry
//! operators are composed.

use tnum::Trit;

/// Kleene conjunction: `0` dominates, `1` is neutral.
///
/// # Examples
///
/// ```
/// use bitwise_domain::kleene::and;
/// use tnum::Trit::{One, Unknown, Zero};
/// assert_eq!(and(Zero, Unknown), Zero);
/// assert_eq!(and(One, Unknown), Unknown);
/// assert_eq!(and(One, One), One);
/// ```
#[must_use]
pub const fn and(a: Trit, b: Trit) -> Trit {
    match (a, b) {
        (Trit::Zero, _) | (_, Trit::Zero) => Trit::Zero,
        (Trit::One, Trit::One) => Trit::One,
        _ => Trit::Unknown,
    }
}

/// Kleene disjunction: `1` dominates, `0` is neutral.
#[must_use]
pub const fn or(a: Trit, b: Trit) -> Trit {
    match (a, b) {
        (Trit::One, _) | (_, Trit::One) => Trit::One,
        (Trit::Zero, Trit::Zero) => Trit::Zero,
        _ => Trit::Unknown,
    }
}

/// Kleene exclusive-or: unknown if either input is unknown.
#[must_use]
pub const fn xor(a: Trit, b: Trit) -> Trit {
    match (a, b) {
        (Trit::Unknown, _) | (_, Trit::Unknown) => Trit::Unknown,
        _ => {
            if matches!(a, Trit::One) != matches!(b, Trit::One) {
                Trit::One
            } else {
                Trit::Zero
            }
        }
    }
}

/// Kleene negation: flips known trits, keeps unknown.
#[must_use]
pub const fn not(a: Trit) -> Trit {
    match a {
        Trit::Zero => Trit::One,
        Trit::One => Trit::Zero,
        Trit::Unknown => Trit::Unknown,
    }
}

/// Three-input majority — the carry-out of a full adder,
/// `maj(p, q, c) = (p & q) | (c & (p ⊕ q))`, evaluated *set-wise* rather
/// than by composing the Kleene connectives.
///
/// Set-wise evaluation matters: composing `or(and(p, q), and(c, xor(p, q)))`
/// duplicates `p` and `q` and can lose precision; the majority of three
/// trits is computed here directly over all consistent assignments.
///
/// # Examples
///
/// ```
/// use bitwise_domain::kleene::majority;
/// use tnum::Trit::{One, Unknown, Zero};
/// // Two known ones force a carry regardless of the third input.
/// assert_eq!(majority(One, One, Unknown), One);
/// assert_eq!(majority(Zero, Unknown, Zero), Zero);
/// assert_eq!(majority(One, Unknown, Zero), Unknown);
/// ```
#[must_use]
pub fn majority(a: Trit, b: Trit, c: Trit) -> Trit {
    let ones = [a, b, c].iter().filter(|t| matches!(t, Trit::One)).count();
    let zeros = [a, b, c].iter().filter(|t| matches!(t, Trit::Zero)).count();
    if ones >= 2 {
        Trit::One
    } else if zeros >= 2 {
        Trit::Zero
    } else {
        Trit::Unknown
    }
}

/// Three-input Kleene exclusive-or — the sum bit of a full adder.
#[must_use]
pub const fn xor3(a: Trit, b: Trit, c: Trit) -> Trit {
    xor(xor(a, b), c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnum::Trit::{One, Unknown, Zero};

    /// Checks a binary connective against its concrete truth table over all
    /// consistent assignments of unknowns (i.e. optimality of the trit op).
    fn exhaustive_binary(op_t: impl Fn(Trit, Trit) -> Trit, op_c: impl Fn(bool, bool) -> bool) {
        for a in Trit::ALL {
            for b in Trit::ALL {
                let mut outcomes = std::collections::HashSet::new();
                for x in [false, true] {
                    if !a.contains_bit(x) {
                        continue;
                    }
                    for y in [false, true] {
                        if !b.contains_bit(y) {
                            continue;
                        }
                        outcomes.insert(op_c(x, y));
                    }
                }
                let expect = match (outcomes.contains(&false), outcomes.contains(&true)) {
                    (true, true) => Unknown,
                    (false, true) => One,
                    (true, false) => Zero,
                    (false, false) => unreachable!("non-empty trits"),
                };
                assert_eq!(op_t(a, b), expect, "{a:?}, {b:?}");
            }
        }
    }

    #[test]
    fn and_optimal() {
        exhaustive_binary(and, |x, y| x && y);
    }

    #[test]
    fn or_optimal() {
        exhaustive_binary(or, |x, y| x || y);
    }

    #[test]
    fn xor_optimal() {
        exhaustive_binary(xor, |x, y| x != y);
    }

    #[test]
    fn not_flips() {
        assert_eq!(not(Zero), One);
        assert_eq!(not(One), Zero);
        assert_eq!(not(Unknown), Unknown);
    }

    #[test]
    fn majority_optimal() {
        for a in Trit::ALL {
            for b in Trit::ALL {
                for c in Trit::ALL {
                    let mut outcomes = std::collections::HashSet::new();
                    for x in [false, true] {
                        for y in [false, true] {
                            for z in [false, true] {
                                if a.contains_bit(x) && b.contains_bit(y) && c.contains_bit(z) {
                                    let n = x as u8 + y as u8 + z as u8;
                                    outcomes.insert(n >= 2);
                                }
                            }
                        }
                    }
                    let expect = match (outcomes.contains(&false), outcomes.contains(&true)) {
                        (true, true) => Unknown,
                        (false, true) => One,
                        (true, false) => Zero,
                        (false, false) => unreachable!(),
                    };
                    assert_eq!(majority(a, b, c), expect, "{a:?} {b:?} {c:?}");
                }
            }
        }
    }

    #[test]
    fn majority_beats_composition() {
        // The composed form or(and(p,q), and(c, xor(p,q))) duplicates p and
        // q; find at least one input where set-wise majority is strictly
        // more precise.
        let mut strictly_better = false;
        for a in Trit::ALL {
            for b in Trit::ALL {
                for c in Trit::ALL {
                    let composed = or(and(a, b), and(c, xor(a, b)));
                    let direct = majority(a, b, c);
                    // Direct must never be coarser.
                    if direct != composed {
                        assert!(composed.is_unknown(), "composition may only lose precision");
                        strictly_better = true;
                    }
                }
            }
        }
        assert!(
            strictly_better,
            "expected majority to beat composition somewhere"
        );
    }
}
