//! O(n) ripple-carry addition and ripple-borrow subtraction over trits —
//! the Regehr–Duongsaa construction.
//!
//! Each output trit is computed from the operand trits and an abstract
//! carry (borrow) trit via the full-adder (full-subtractor) equations of
//! Definition 1 / Definition 23 of the paper, evaluated in three-valued
//! logic. The carry chain makes these O(n) per operation, versus the O(1)
//! `tnum_add`/`tnum_sub` — the efficiency gap the paper highlights.

use crate::kleene;
use tnum::{Tnum, Trit};

/// Ripple-carry abstract addition: O(64) trit-level full adders.
///
/// Sound, and — because the per-trit carry is computed set-wise via
/// [`kleene::majority`] — it coincides with the optimal `tnum_add` on all
/// inputs (checked exhaustively in this crate's tests); the difference is
/// purely asymptotic cost.
///
/// # Examples
///
/// ```
/// use bitwise_domain::ripple_add;
/// use tnum::Tnum;
/// let p: Tnum = "10x0".parse()?;
/// let q: Tnum = "10x1".parse()?;
/// assert_eq!(ripple_add(p, q), p.add(q));
/// # Ok::<(), tnum::ParseTnumError>(())
/// ```
#[must_use]
pub fn ripple_add(a: Tnum, b: Tnum) -> Tnum {
    let mut out = Tnum::ZERO;
    let mut carry = Trit::Zero;
    for i in 0..tnum::BITS {
        let (p, q) = (a.trit(i), b.trit(i));
        out = out.with_trit(i, kleene::xor3(p, q, carry));
        carry = kleene::majority(p, q, carry);
    }
    out
}

/// Ripple-borrow abstract subtraction: O(64) trit-level full subtractors.
///
/// The borrow-out is `(!p & q) | (bin & !(p ⊕ q))` (Definition 23),
/// evaluated set-wise over the three input trits.
///
/// # Examples
///
/// ```
/// use bitwise_domain::ripple_sub;
/// use tnum::Tnum;
/// let p: Tnum = "1x0".parse()?;
/// let q: Tnum = "010".parse()?;
/// assert_eq!(ripple_sub(p, q), p.sub(q));
/// # Ok::<(), tnum::ParseTnumError>(())
/// ```
#[must_use]
pub fn ripple_sub(a: Tnum, b: Tnum) -> Tnum {
    let mut out = Tnum::ZERO;
    let mut borrow = Trit::Zero;
    for i in 0..tnum::BITS {
        let (p, q) = (a.trit(i), b.trit(i));
        out = out.with_trit(i, kleene::xor3(p, q, borrow));
        borrow = borrow_out(p, q, borrow);
    }
    out
}

/// Set-wise borrow-out of a full subtractor: over all consistent concrete
/// assignments of `(p, q, bin)`, does `p - q - bin` underflow?
fn borrow_out(p: Trit, q: Trit, bin: Trit) -> Trit {
    let mut can_borrow = false;
    let mut can_not_borrow = false;
    for x in [false, true] {
        if !p.contains_bit(x) {
            continue;
        }
        for y in [false, true] {
            if !q.contains_bit(y) {
                continue;
            }
            for z in [false, true] {
                if !bin.contains_bit(z) {
                    continue;
                }
                // p - q - bin underflows iff p < q + bin.
                if (x as i8) - (y as i8) - (z as i8) < 0 {
                    can_borrow = true;
                } else {
                    can_not_borrow = true;
                }
            }
        }
    }
    match (can_borrow, can_not_borrow) {
        (true, true) => Trit::Unknown,
        (true, false) => Trit::One,
        (false, true) => Trit::Zero,
        (false, false) => unreachable!("trits are non-empty"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnum::enumerate::tnums;

    #[test]
    fn ripple_add_equals_tnum_add_exhaustive_w5() {
        // With set-wise carries the ripple adder is optimal, hence equal to
        // tnum_add (which Theorem 6 proves optimal). The paper's complaint
        // about Regehr–Duongsaa addition is its O(n) cost, which this
        // construction retains.
        for a in tnums(5) {
            for b in tnums(5) {
                assert_eq!(ripple_add(a, b), a.add(b), "{a} + {b}");
            }
        }
    }

    #[test]
    fn ripple_sub_equals_tnum_sub_exhaustive_w5() {
        for a in tnums(5) {
            for b in tnums(5) {
                assert_eq!(ripple_sub(a, b), a.sub(b), "{a} - {b}");
            }
        }
    }

    #[test]
    fn ripple_add_sound_w4() {
        for a in tnums(4) {
            for b in tnums(4) {
                let r = ripple_add(a, b);
                for x in a.concretize() {
                    for y in b.concretize() {
                        assert!(r.contains(x.wrapping_add(y)));
                    }
                }
            }
        }
    }

    #[test]
    fn carries_ripple_through_unknowns() {
        // p = x1 concretizes to {1, 3}; adding the constant 1 gives {2, 4},
        // whose exact abstraction is xx0: the unknown bit 1 of p feeds an
        // unknown carry into bit 2.
        let p: Tnum = "x1".parse().unwrap();
        let q: Tnum = "01".parse().unwrap();
        assert_eq!(ripple_add(p, q).to_bin_string(3), "xx0");
    }

    #[test]
    fn constants_fold_exactly() {
        assert_eq!(
            ripple_add(Tnum::constant(3), Tnum::constant(4)),
            Tnum::constant(7)
        );
        assert_eq!(
            ripple_sub(Tnum::constant(4), Tnum::constant(7)),
            Tnum::constant(4u64.wrapping_sub(7))
        );
        // Wrap-around at the top bit.
        assert_eq!(
            ripple_add(Tnum::constant(u64::MAX), Tnum::constant(1)),
            Tnum::constant(0)
        );
    }
}
