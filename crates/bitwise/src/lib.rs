//! # bitwise-domain — the Regehr–Duongsaa baseline
//!
//! Regehr and Duongsaa ("Deriving abstract transfer functions for analyzing
//! embedded software", LCTES 2006) defined the *bitwise domain*: the same
//! value/mask representation as tnums, with arithmetic transfer functions
//! built from **trit-level ripple-carry logic** and **composition of
//! abstract operators**. The tnum paper uses their operators as the prior
//! state of the art:
//!
//! * their addition/subtraction run in O(n) for n-bit values (versus the
//!   kernel's O(1) `tnum_add`/`tnum_sub`);
//! * their multiplication `bitwise_mul` (Listing 5 of the paper) runs in
//!   O(n²) naively; the paper contributes a machine-arithmetic optimization
//!   that brings it from ~4921 to ~387 cycles (§IV-B).
//!
//! This crate implements all of those baselines over the [`Tnum`]
//! representation so they can be compared head-to-head with the kernel
//! operators (see the `tnum-verify` and `bench` crates):
//!
//! * [`ripple_add`] / [`ripple_sub`] — O(n) trit-level ripple carry/borrow;
//! * [`bitwise_mul`] — Listing 5 with the paper's machine-arithmetic
//!   optimization of the "kill" step;
//! * [`bitwise_mul_naive`] — Listing 5 verbatim, killing trits one at a
//!   time (the slow version the paper measured at ~4921 cycles);
//! * [`ripple_mul`] — fully composed variant using [`ripple_add`] for the
//!   partial-product summation, the closest rendering of the original
//!   Regehr–Duongsaa construction;
//! * [`kleene`] — the three-valued (Kleene) logic on [`Trit`]s underlying
//!   the ripple operators;
//! * [`knownbits`] — the LLVM *known bits* encoding of the same domain
//!   (§V of the paper), with transfer functions differentially tested for
//!   exact agreement with the kernel tnum operators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Kernel-faithful operator names (`add` mirrors `tnum_add`) and explicit
// BPF division semantics (`x / 0 = 0`) are intentional throughout.
#![allow(clippy::should_implement_trait)]

mod domain_impl;
pub mod kleene;
pub mod knownbits;
mod mul;
mod ripple;

pub use knownbits::KnownBits;
pub use mul::{bitwise_mul, bitwise_mul_naive, ripple_mul};
pub use ripple::{ripple_add, ripple_sub};

pub use tnum::{Tnum, Trit};
