//! [`AbstractDomain`] / [`ArithDomain`] / [`BitwiseDomain`] for
//! [`KnownBits`] — the LLVM encoding of the value/mask domain, plugged
//! into the same generic verification campaign as the kernel tnums.
//!
//! The point of this impl is the paper's §V remark made executable: the
//! two encodings are isomorphic, so the *same* bounded-verification
//! campaign must pass for both. Where LLVM has a native transfer function
//! (`and`/`or`/`xor`, `computeForAddSub`, constant shifts) we use it;
//! where it does not (multiplication, division, shifts by an *abstract*
//! amount), we cross the bijection and use the Regehr–Duongsaa /
//! kernel operators, which is exactly what a production known-bits
//! analysis would borrow from this line of work.

use domain::rng::SplitMix64;
use domain::{AbstractDomain, ArithDomain, BitwiseDomain, WidenDomain};
use tnum::Tnum;

use crate::knownbits::KnownBits;

impl AbstractDomain for KnownBits {
    const NAME: &'static str = "knownbits";

    fn top() -> KnownBits {
        KnownBits::UNKNOWN
    }

    fn le(self, other: KnownBits) -> bool {
        // γ(self) ⊆ γ(other) iff `other`'s knowledge is a subset of ours
        // and agrees with it: no bit known in `other` is unknown or
        // opposite in `self`.
        other.zeros() & !self.zeros() == 0 && other.ones() & !self.ones() == 0
    }

    fn join(self, other: KnownBits) -> KnownBits {
        self.intersect_with(other)
    }

    fn meet(self, other: KnownBits) -> Option<KnownBits> {
        self.union_with(other)
    }

    fn abstract_of<I: IntoIterator<Item = u64>>(values: I) -> Option<KnownBits> {
        Tnum::abstract_of(values).map(KnownBits::from_tnum)
    }

    fn contains(self, x: u64) -> bool {
        KnownBits::contains(self, x)
    }

    fn enumerate_at_width(width: u32) -> Vec<KnownBits> {
        tnum::enumerate::tnums(width)
            .map(KnownBits::from_tnum)
            .collect()
    }

    fn members(self, width: u32) -> Vec<u64> {
        AbstractDomain::truncate(self, width)
            .to_tnum()
            .concretize()
            .collect()
    }

    fn as_constant(self) -> Option<u64> {
        KnownBits::as_constant(self)
    }

    fn truncate(self, width: u32) -> KnownBits {
        KnownBits::from_tnum(self.to_tnum().truncate(width))
    }

    fn random(rng: &mut SplitMix64) -> KnownBits {
        KnownBits::from_tnum(Tnum::random(rng))
    }

    fn random_member(self, rng: &mut SplitMix64) -> u64 {
        self.to_tnum().random_member(rng)
    }
}

impl WidenDomain for KnownBits {
    /// Widening is the join, exactly as for the isomorphic tnum encoding:
    /// each strictly growing step forgets at least one known bit, so the
    /// lattice has finite height and ascending chains stabilize.
    fn widen(self, newer: KnownBits) -> KnownBits {
        self.intersect_with(newer)
    }
}

impl ArithDomain for KnownBits {
    fn abs_add(self, rhs: KnownBits) -> KnownBits {
        // LLVM's computeForAddSub — verified elsewhere to agree exactly
        // with the kernel's O(1) tnum_add.
        self.add(rhs)
    }

    fn abs_sub(self, rhs: KnownBits) -> KnownBits {
        self.sub(rhs)
    }

    fn abs_mul(self, rhs: KnownBits) -> KnownBits {
        // The Regehr–Duongsaa multiplication (Listing 5, optimized form)
        // through the encoding bijection — the baseline the paper measures.
        KnownBits::from_tnum(crate::bitwise_mul(self.to_tnum(), rhs.to_tnum()))
    }

    fn abs_div(self, rhs: KnownBits) -> KnownBits {
        KnownBits::from_tnum(self.to_tnum().div(rhs.to_tnum()))
    }

    fn abs_rem(self, rhs: KnownBits) -> KnownBits {
        KnownBits::from_tnum(self.to_tnum().rem(rhs.to_tnum()))
    }
}

impl BitwiseDomain for KnownBits {
    fn abs_and(self, rhs: KnownBits) -> KnownBits {
        self.and(rhs)
    }

    fn abs_or(self, rhs: KnownBits) -> KnownBits {
        self.or(rhs)
    }

    fn abs_xor(self, rhs: KnownBits) -> KnownBits {
        self.xor(rhs)
    }

    fn abs_shl(self, rhs: KnownBits, _width: u32) -> KnownBits {
        match rhs.as_constant() {
            Some(k) => self.shl((k & 63) as u32),
            None => KnownBits::from_tnum(
                self.to_tnum()
                    .lshift_tnum(rhs.to_tnum().and(Tnum::constant(63))),
            ),
        }
    }

    fn abs_lshr(self, rhs: KnownBits, _width: u32) -> KnownBits {
        match rhs.as_constant() {
            Some(k) => self.lshr((k & 63) as u32),
            None => KnownBits::from_tnum(
                self.to_tnum()
                    .rshift_tnum(rhs.to_tnum().and(Tnum::constant(63))),
            ),
        }
    }

    fn abs_ashr(self, rhs: KnownBits, width: u32) -> KnownBits {
        // Sign-extend at the verification width first; LLVM's `ashr` is
        // 64-bit-sign-position only, so the width-aware form crosses the
        // bijection unconditionally.
        KnownBits::from_tnum(
            self.to_tnum()
                .sign_extend_from(width)
                .arshift_tnum(rhs.to_tnum().and(Tnum::constant(63))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_and_galois_laws() {
        domain::laws::assert_lattice_laws::<KnownBits>(4);
        domain::laws::assert_galois_soundness::<KnownBits>(5);
        domain::laws::assert_sampling_sound::<KnownBits>(2_000, 0x1111);
        domain::laws::assert_widening_laws::<KnownBits>(3, 200, 200, 0x1112);
    }

    #[test]
    fn le_agrees_with_tnum_order_exhaustively() {
        for a in tnum::enumerate::tnums(5) {
            for b in tnum::enumerate::tnums(5) {
                assert_eq!(
                    KnownBits::from_tnum(a).le(KnownBits::from_tnum(b)),
                    a.is_subset_of(b),
                    "⊑ disagrees through the bijection on {a}, {b}"
                );
            }
        }
    }

    #[test]
    fn native_ops_used_for_add_and_bitwise() {
        let a = KnownBits::from_tnum("1x0x".parse().unwrap());
        let b = KnownBits::from_tnum("x011".parse().unwrap());
        assert_eq!(a.abs_add(b), a.add(b));
        assert_eq!(a.abs_and(b), a.and(b));
        // And both agree with the kernel ops through the bijection.
        assert_eq!(a.abs_add(b).to_tnum(), a.to_tnum().add(b.to_tnum()));
    }

    #[test]
    fn constant_shift_uses_llvm_transfer() {
        let a = KnownBits::from_tnum("1x".parse().unwrap());
        let k = <KnownBits as AbstractDomain>::constant(3);
        assert_eq!(a.abs_shl(k, 64), a.shl(3));
        assert_eq!(a.abs_lshr(k, 64), a.lshr(3));
    }
}
