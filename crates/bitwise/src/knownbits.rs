//! The LLVM-style *known bits* domain (§V of the paper: "of particular
//! relevance to our work is the known-bits domain from LLVM").
//!
//! LLVM represents the same abstract values as tnums with two masks —
//! `zeros` (bits known to be 0) and `ones` (bits known to be 1) — instead
//! of the kernel's `value`/`mask` pair. The two encodings are isomorphic;
//! [`KnownBits::from_tnum`]/[`KnownBits::to_tnum`] witness the bijection,
//! and this module implements the classic LLVM transfer functions so they
//! can be differentially tested against the kernel operators (the tests
//! check exact agreement, supporting the paper's remark that its
//! verification work transfers to LLVM's known-bits analysis).

use tnum::Tnum;

/// An abstract 64-bit value in LLVM's encoding: disjoint masks of bits
/// known zero and known one.
///
/// Invariant: `zeros & ones == 0` (a conflicted value has no
/// representation here, exactly as ⊥ has none as a [`Tnum`]).
///
/// # Examples
///
/// ```
/// use bitwise_domain::knownbits::KnownBits;
/// use tnum::Tnum;
///
/// let t: Tnum = "1x0".parse()?;
/// let kb = KnownBits::from_tnum(t);
/// assert_eq!(kb.ones(), 0b100);
/// assert!(kb.zeros() & 0b001 != 0);
/// assert_eq!(kb.to_tnum(), t);
/// # Ok::<(), tnum::ParseTnumError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct KnownBits {
    zeros: u64,
    ones: u64,
}

impl KnownBits {
    /// The completely unknown value (LLVM's default-constructed state).
    pub const UNKNOWN: KnownBits = KnownBits { zeros: 0, ones: 0 };

    /// Creates from explicit masks.
    ///
    /// Returns `None` when a bit is claimed both zero and one (LLVM's
    /// `hasConflict()`).
    #[must_use]
    pub const fn new(zeros: u64, ones: u64) -> Option<KnownBits> {
        if zeros & ones != 0 {
            None
        } else {
            Some(KnownBits { zeros, ones })
        }
    }

    /// The exact abstraction of a constant (`KnownBits::makeConstant`).
    #[must_use]
    pub const fn constant(v: u64) -> KnownBits {
        KnownBits { zeros: !v, ones: v }
    }

    /// Bits known to be zero (`Known.Zero`).
    #[must_use]
    pub const fn zeros(self) -> u64 {
        self.zeros
    }

    /// Bits known to be one (`Known.One`).
    #[must_use]
    pub const fn ones(self) -> u64 {
        self.ones
    }

    /// Converts from the kernel encoding: `zeros = !(value | mask)`,
    /// `ones = value`.
    #[must_use]
    pub const fn from_tnum(t: Tnum) -> KnownBits {
        KnownBits {
            zeros: !(t.value() | t.mask()),
            ones: t.value(),
        }
    }

    /// Converts to the kernel encoding: `value = ones`,
    /// `mask = !(zeros | ones)`.
    #[must_use]
    pub const fn to_tnum(self) -> Tnum {
        Tnum::masked(self.ones, !(self.zeros | self.ones))
    }

    /// Whether every bit is known (`isConstant()`), and the value.
    #[must_use]
    pub const fn as_constant(self) -> Option<u64> {
        if self.zeros | self.ones == u64::MAX {
            Some(self.ones)
        } else {
            None
        }
    }

    /// Membership of a concrete value.
    #[must_use]
    pub const fn contains(self, x: u64) -> bool {
        x & self.zeros == 0 && !x & self.ones == 0
    }

    /// LLVM `KnownBits::operator&`: known-one iff both one; known-zero if
    /// either zero.
    #[must_use]
    pub const fn and(self, rhs: KnownBits) -> KnownBits {
        KnownBits {
            zeros: self.zeros | rhs.zeros,
            ones: self.ones & rhs.ones,
        }
    }

    /// LLVM `KnownBits::operator|`.
    #[must_use]
    pub const fn or(self, rhs: KnownBits) -> KnownBits {
        KnownBits {
            zeros: self.zeros & rhs.zeros,
            ones: self.ones | rhs.ones,
        }
    }

    /// LLVM `KnownBits::operator^`: known where both sides are known.
    #[must_use]
    pub const fn xor(self, rhs: KnownBits) -> KnownBits {
        let known = (self.zeros | self.ones) & (rhs.zeros | rhs.ones);
        let value = self.ones ^ rhs.ones;
        KnownBits {
            zeros: known & !value,
            ones: known & value,
        }
    }

    /// Bitwise complement: swap the masks.
    #[must_use]
    pub const fn not(self) -> KnownBits {
        KnownBits {
            zeros: self.ones,
            ones: self.zeros,
        }
    }

    /// LLVM `KnownBits::computeForAddSub(/*Add=*/true, …)` — the
    /// carry-propagation formulation (`llvm/lib/Support/KnownBits.cpp`):
    /// compute the known carries from the known-one sum and the
    /// possible-one sum, then keep the bits where both agree.
    #[must_use]
    pub fn add(self, rhs: KnownBits) -> KnownBits {
        // Sum of minimal members (all unknown bits 0) and of maximal
        // members (all unknown bits 1).
        let min_sum = self.ones.wrapping_add(rhs.ones);
        let max_sum = (!self.zeros).wrapping_add(!rhs.zeros);
        // A result bit is known iff both operand bits are known and the
        // carry into that position is the same in the extreme sums.
        let known_ops = (self.zeros | self.ones) & (rhs.zeros | rhs.ones);
        let carry_agree = !(min_sum ^ max_sum);
        let known = known_ops & carry_agree;
        KnownBits {
            zeros: known & !min_sum,
            ones: known & min_sum,
        }
    }

    /// Subtraction via `a + (~b) + 1`, LLVM's `computeForAddSub(false, …)`.
    #[must_use]
    pub fn sub(self, rhs: KnownBits) -> KnownBits {
        // a - b = a + ~b + 1; fold the +1 into the minimal/maximal sums.
        let nb = rhs.not();
        let min_sum = self.ones.wrapping_add(nb.ones).wrapping_add(1);
        let max_sum = (!self.zeros).wrapping_add(!nb.zeros).wrapping_add(1);
        let known_ops = (self.zeros | self.ones) & (nb.zeros | nb.ones);
        let carry_agree = !(min_sum ^ max_sum);
        let known = known_ops & carry_agree;
        KnownBits {
            zeros: known & !min_sum,
            ones: known & min_sum,
        }
    }

    /// Left shift by a constant (`KnownBits::shl` with a known amount).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 64`.
    #[must_use]
    pub const fn shl(self, k: u32) -> KnownBits {
        assert!(k < 64);
        // Low bits become known zero.
        KnownBits {
            zeros: (self.zeros << k) | ((1u64 << k) - 1),
            ones: self.ones << k,
        }
    }

    /// Logical right shift by a constant (`KnownBits::lshr`).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 64`.
    #[must_use]
    pub const fn lshr(self, k: u32) -> KnownBits {
        assert!(k < 64);
        let high = if k == 0 { 0 } else { !(u64::MAX >> k) };
        KnownBits {
            zeros: (self.zeros >> k) | high,
            ones: self.ones >> k,
        }
    }

    /// Arithmetic right shift by a constant (`KnownBits::ashr`).
    ///
    /// # Panics
    ///
    /// Panics if `k >= 64`.
    #[must_use]
    pub const fn ashr(self, k: u32) -> KnownBits {
        assert!(k < 64);
        KnownBits {
            zeros: ((self.zeros as i64) >> k) as u64,
            ones: ((self.ones as i64) >> k) as u64,
        }
    }

    /// LLVM `KnownBits::intersectWith`: information valid on *either*
    /// path (the join — keeps only agreed-upon bits).
    #[must_use]
    pub const fn intersect_with(self, rhs: KnownBits) -> KnownBits {
        KnownBits {
            zeros: self.zeros & rhs.zeros,
            ones: self.ones & rhs.ones,
        }
    }

    /// LLVM `KnownBits::unionWith`: combine information known on *both*
    /// (the meet; may conflict, hence `Option`).
    #[must_use]
    pub const fn union_with(self, rhs: KnownBits) -> Option<KnownBits> {
        KnownBits::new(self.zeros | rhs.zeros, self.ones | rhs.ones)
    }
}

impl From<Tnum> for KnownBits {
    fn from(t: Tnum) -> KnownBits {
        KnownBits::from_tnum(t)
    }
}

impl From<KnownBits> for Tnum {
    fn from(kb: KnownBits) -> Tnum {
        kb.to_tnum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tnum::enumerate::tnums;

    #[test]
    fn encoding_bijection_exhaustive_w6() {
        for t in tnums(6) {
            // Pad the unknown region above width 6 as known-zero, which is
            // what from_tnum of a width-6 tnum produces.
            let kb = KnownBits::from_tnum(t);
            assert_eq!(kb.zeros() & kb.ones(), 0, "no conflicts");
            assert_eq!(kb.to_tnum(), t, "round trip");
            for x in t.concretize() {
                assert!(kb.contains(x));
            }
        }
    }

    #[test]
    fn conflict_rejected() {
        assert_eq!(KnownBits::new(0b1, 0b1), None);
        assert!(KnownBits::new(0b10, 0b01).is_some());
    }

    #[test]
    fn constants() {
        let kb = KnownBits::constant(42);
        assert_eq!(kb.as_constant(), Some(42));
        assert_eq!(KnownBits::UNKNOWN.as_constant(), None);
        assert_eq!(kb.to_tnum(), Tnum::constant(42));
    }

    /// The LLVM ops must agree exactly with the kernel tnum ops through
    /// the encoding bijection.
    #[test]
    fn ops_agree_with_tnum_exhaustive_w5() {
        for a in tnums(5) {
            for b in tnums(5) {
                let (ka, kb) = (KnownBits::from_tnum(a), KnownBits::from_tnum(b));
                assert_eq!(ka.and(kb).to_tnum(), a.and(b), "and {a} {b}");
                assert_eq!(ka.or(kb).to_tnum(), a.or(b), "or {a} {b}");
                assert_eq!(ka.xor(kb).to_tnum(), a.xor(b), "xor {a} {b}");
                assert_eq!(
                    ka.add(kb).to_tnum(),
                    a.add(b),
                    "computeForAddSub(add) vs tnum_add on {a}, {b}"
                );
                assert_eq!(
                    ka.sub(kb).to_tnum(),
                    a.sub(b),
                    "computeForAddSub(sub) vs tnum_sub on {a}, {b}"
                );
                assert_eq!(
                    ka.intersect_with(kb).to_tnum(),
                    a.union(b),
                    "intersectWith is the lattice join"
                );
            }
        }
    }

    #[test]
    fn shifts_agree_with_tnum() {
        for t in tnums(6) {
            let kb = KnownBits::from_tnum(t);
            for k in 0..8u32 {
                assert_eq!(kb.shl(k).to_tnum(), t.lshift(k), "shl {t} by {k}");
                assert_eq!(kb.lshr(k).to_tnum(), t.rshift(k), "lshr {t} by {k}");
            }
        }
        // ashr needs a full-width example: sign bit known one.
        let neg = KnownBits::constant(u64::MAX << 60);
        assert_eq!(
            neg.ashr(4).to_tnum(),
            Tnum::constant(((u64::MAX << 60) as i64 >> 4) as u64)
        );
        // Unknown sign bit replicates unknowns.
        let t = Tnum::masked(0, 1 << 63);
        assert_eq!(KnownBits::from_tnum(t).ashr(1).to_tnum(), t.arshift(1));
    }

    #[test]
    fn add_sound_on_64bit_samples() {
        let cases = [
            (KnownBits::constant(u64::MAX), KnownBits::UNKNOWN),
            (
                KnownBits::from_tnum(Tnum::masked(0xff00, 0x00ff)),
                KnownBits::constant(1),
            ),
        ];
        for (a, b) in cases {
            let r = a.add(b);
            // Sample members.
            for xa in [a.ones(), !a.zeros()] {
                for xb in [b.ones(), !b.zeros()] {
                    assert!(r.contains(xa.wrapping_add(xb)));
                }
            }
        }
    }

    #[test]
    fn union_with_is_meet() {
        let a = KnownBits::from_tnum("1x".parse().unwrap());
        let b = KnownBits::from_tnum("x1".parse().unwrap());
        let m = a.union_with(b).unwrap();
        assert_eq!(m.to_tnum(), Tnum::constant(0b11));
        // Conflicting knowledge: None, matching tnum intersect's ⊥.
        let c = KnownBits::constant(0);
        let d = KnownBits::constant(1);
        assert_eq!(c.union_with(d), None);
        assert_eq!(Tnum::constant(0).intersect(Tnum::constant(1)), None);
    }

    #[test]
    fn not_involution() {
        for t in tnums(5) {
            let kb = KnownBits::from_tnum(t);
            assert_eq!(kb.not().not(), kb);
            assert_eq!(kb.not().to_tnum(), t.not().truncate(64), "{t}");
        }
    }
}
