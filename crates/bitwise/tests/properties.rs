//! Randomized property tests for the Regehr–Duongsaa baselines at full
//! width, driven by the workspace's deterministic SplitMix64 stream.

use bitwise_domain::{bitwise_mul, bitwise_mul_naive, ripple_add, ripple_mul, ripple_sub};
use domain::rng::SplitMix64;
use tnum::Tnum;

const CASES: u32 = 512;

fn tnum_and_member(rng: &mut SplitMix64) -> (Tnum, u64) {
    let t = Tnum::masked(rng.next_u64(), rng.next_u64());
    let member = t.value() | (rng.next_u64() & t.mask());
    (t, member)
}

#[test]
fn ripple_add_equals_tnum_add() {
    let mut rng = SplitMix64::new(0x20);
    for _ in 0..CASES {
        let (a, _) = tnum_and_member(&mut rng);
        let (b, _) = tnum_and_member(&mut rng);
        assert_eq!(ripple_add(a, b), a.add(b), "{a} {b}");
    }
}

#[test]
fn ripple_sub_equals_tnum_sub() {
    let mut rng = SplitMix64::new(0x21);
    for _ in 0..CASES {
        let (a, _) = tnum_and_member(&mut rng);
        let (b, _) = tnum_and_member(&mut rng);
        assert_eq!(ripple_sub(a, b), a.sub(b), "{a} {b}");
    }
}

#[test]
fn bitwise_mul_sound() {
    let mut rng = SplitMix64::new(0x22);
    for _ in 0..CASES {
        let (a, x) = tnum_and_member(&mut rng);
        let (b, y) = tnum_and_member(&mut rng);
        assert!(bitwise_mul(a, b).contains(x.wrapping_mul(y)), "{a} {b}");
    }
}

#[test]
fn bitwise_mul_variants_agree() {
    let mut rng = SplitMix64::new(0x23);
    for _ in 0..CASES {
        let (a, _) = tnum_and_member(&mut rng);
        let (b, _) = tnum_and_member(&mut rng);
        let fast = bitwise_mul(a, b);
        assert_eq!(fast, bitwise_mul_naive(a, b), "{a} {b}");
        assert_eq!(fast, ripple_mul(a, b), "{a} {b}");
    }
}

#[test]
fn comparability_check_is_total() {
    // Not a theorem — just the paper's empirical shape: when outputs
    // differ they may or may not be comparable; the comparability check
    // itself must be total and non-panicking over the random stream.
    let mut rng = SplitMix64::new(0x24);
    for _ in 0..CASES {
        let (a, _) = tnum_and_member(&mut rng);
        let (b, _) = tnum_and_member(&mut rng);
        let ours = a.mul(b);
        let theirs = bitwise_mul(a, b);
        let _ = ours.is_comparable_to(theirs);
    }
}
