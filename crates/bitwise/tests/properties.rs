//! Property-based tests for the Regehr–Duongsaa baselines at full width.

use bitwise_domain::{bitwise_mul, bitwise_mul_naive, ripple_add, ripple_mul, ripple_sub};
use proptest::prelude::*;
use tnum::Tnum;

prop_compose! {
    fn tnum_and_member()(mask in any::<u64>(), raw in any::<u64>(), pick in any::<u64>())
        -> (Tnum, u64)
    {
        let t = Tnum::masked(raw, mask);
        (t, t.value() | (pick & t.mask()))
    }
}

proptest! {
    #[test]
    fn ripple_add_equals_tnum_add((a, _) in tnum_and_member(), (b, _) in tnum_and_member()) {
        prop_assert_eq!(ripple_add(a, b), a.add(b));
    }

    #[test]
    fn ripple_sub_equals_tnum_sub((a, _) in tnum_and_member(), (b, _) in tnum_and_member()) {
        prop_assert_eq!(ripple_sub(a, b), a.sub(b));
    }

    #[test]
    fn bitwise_mul_sound((a, x) in tnum_and_member(), (b, y) in tnum_and_member()) {
        prop_assert!(bitwise_mul(a, b).contains(x.wrapping_mul(y)));
    }

    #[test]
    fn bitwise_mul_variants_agree((a, _) in tnum_and_member(), (b, _) in tnum_and_member()) {
        let fast = bitwise_mul(a, b);
        prop_assert_eq!(fast, bitwise_mul_naive(a, b));
        prop_assert_eq!(fast, ripple_mul(a, b));
    }

    #[test]
    fn our_mul_never_incomparably_worse_on_majority((a, _) in tnum_and_member(), (b, _) in tnum_and_member()) {
        // Not a theorem — just the paper's empirical shape: when outputs
        // differ and are comparable, track that our_mul is not *strictly
        // dominated more often than it dominates* over the random stream.
        // (A per-case assertion would be false; instead assert soundness
        // of both and comparability-or-not without crashing.)
        let ours = a.mul(b);
        let theirs = bitwise_mul(a, b);
        // Comparability check must be total and non-panicking.
        let _ = ours.is_comparable_to(theirs);
    }
}
