//! Scoped-thread fan-out shared by the verification campaigns
//! (`tnum_verify`) and the batched program verifier (`verifier::batch`).
//!
//! Two scheduling shapes, both built on `std::thread::scope` (the
//! workspace is dependency-free — no rayon):
//!
//! * [`par_chunks`] — static contiguous chunking, for uniform work like
//!   exhaustive operand sweeps where every index costs the same;
//! * [`par_workers`] + [`WorkQueue`] — self-scheduling workers claiming
//!   indices from a shared atomic queue, for *non-uniform* work like
//!   verifying a batch of programs whose analysis costs differ by orders
//!   of magnitude: a worker that drew a cheap program immediately steals
//!   the next pending one instead of idling behind a static partition.
//!
//! Thread counts default to [`default_threads`], which honors the
//! `TNUM_THREADS` environment variable so CI runs and bench baselines
//! can pin reproducible worker counts.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Splits `0..total` into contiguous chunks, runs `work` on each chunk in
/// its own thread, and returns the per-chunk results in order.
///
/// `work` receives the chunk range as `(start, end)`.
///
/// # Examples
///
/// ```
/// use domain::parallel::par_chunks;
/// let partials = par_chunks(1000, 4, |start, end| (start..end).sum::<u64>());
/// assert_eq!(partials.into_iter().sum::<u64>(), (0..1000).sum());
/// ```
pub fn par_chunks<R: Send>(
    total: u64,
    threads: usize,
    work: impl Fn(u64, u64) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(total.max(1) as usize);
    let chunk = total.div_ceil(threads as u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(total);
                let work = &work;
                scope.spawn(move || work(start, end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread panicked"))
            .collect()
    })
}

/// A shared claim queue over `0..total`: workers [`claim`](WorkQueue::claim)
/// the next pending index atomically, so finished workers steal remaining
/// work instead of idling behind a static partition.
///
/// # Examples
///
/// ```
/// use domain::parallel::WorkQueue;
/// let q = WorkQueue::new(3);
/// assert_eq!(q.claim(), Some(0));
/// assert_eq!(q.claim(), Some(1));
/// assert_eq!(q.claim(), Some(2));
/// assert_eq!(q.claim(), None);
/// ```
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    total: usize,
}

impl WorkQueue {
    /// A queue over the indices `0..total`, none claimed yet.
    #[must_use]
    pub fn new(total: usize) -> WorkQueue {
        WorkQueue {
            next: AtomicUsize::new(0),
            total,
        }
    }

    /// Claims the next pending index, or `None` when the queue is
    /// drained. Each index is handed out exactly once across all
    /// threads.
    pub fn claim(&self) -> Option<usize> {
        // `fetch_add` past `total` is harmless: later claimers see an
        // even larger index and also return None. usize overflow would
        // need 2^64 calls.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    /// The total number of indices this queue hands out.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Runs `work(worker_id)` on `threads` scoped threads and returns the
/// per-worker results in worker order. `work` typically loops on a
/// shared [`WorkQueue`] until it drains.
///
/// # Examples
///
/// ```
/// use domain::parallel::{par_workers, WorkQueue};
/// let queue = WorkQueue::new(100);
/// let claimed = par_workers(4, |_worker| {
///     let mut sum = 0u64;
///     while let Some(i) = queue.claim() {
///         sum += i as u64;
///     }
///     sum
/// });
/// assert_eq!(claimed.iter().sum::<u64>(), (0..100).sum());
/// ```
pub fn par_workers<R: Send>(threads: usize, work: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = threads.max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let work = &work;
                scope.spawn(move || work(worker))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// A sensible default thread count for this machine: the `TNUM_THREADS`
/// environment variable when set to a positive integer (CI pins this for
/// reproducible baselines), otherwise the available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TNUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_items_exactly_once() {
        for threads in [1, 2, 3, 7] {
            let counts = par_chunks(100, threads, |s, e| e - s);
            assert_eq!(counts.iter().sum::<u64>(), 100);
        }
    }

    #[test]
    fn handles_degenerate_sizes() {
        assert_eq!(par_chunks(0, 4, |s, e| e - s).iter().sum::<u64>(), 0);
        assert_eq!(par_chunks(1, 8, |s, e| e - s).iter().sum::<u64>(), 1);
        assert_eq!(par_chunks(3, 8, |s, e| e - s).iter().sum::<u64>(), 3);
    }

    #[test]
    fn work_queue_hands_out_each_index_once_across_threads() {
        let queue = WorkQueue::new(1000);
        assert_eq!(queue.total(), 1000);
        let seen = par_workers(4, |_| {
            let mut mine = Vec::new();
            while let Some(i) = queue.claim() {
                mine.push(i);
            }
            mine
        });
        let mut all: Vec<usize> = seen.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_queue_claims_nothing() {
        let queue = WorkQueue::new(0);
        assert_eq!(queue.claim(), None);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
