//! Scoped-thread fan-out shared by the verification campaigns
//! (`tnum_verify`) and the batched program verifier (`verifier::batch`).
//!
//! Two scheduling shapes, both built on `std::thread::scope` (the
//! workspace is dependency-free — no rayon):
//!
//! * [`par_chunks`] — static contiguous chunking, for uniform work like
//!   exhaustive operand sweeps where every index costs the same;
//! * [`par_workers`] + [`WorkQueue`] — self-scheduling workers claiming
//!   indices from a shared atomic queue, for *non-uniform* work like
//!   verifying a batch of programs whose analysis costs differ by orders
//!   of magnitude: a worker that drew a cheap program immediately steals
//!   the next pending one instead of idling behind a static partition;
//! * [`par_workers`] + [`StealPool`] — per-worker deques with
//!   work stealing, for work that *spawns more work* (like the
//!   intra-program path explorer forking DFS subtrees): owners push and
//!   pop their own deque LIFO to preserve locality, idle workers steal
//!   the oldest — typically largest — item from a victim's deque FIFO.
//!
//! Thread counts default to [`default_threads`], which honors the
//! `TNUM_THREADS` environment variable so CI runs and bench baselines
//! can pin reproducible worker counts.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if the mutex is poisoned.
///
/// A mutex is poisoned when a thread panics while holding it; with the
/// panic-containment layers in `verifier` (batch workers and parshard
/// jobs run under `catch_unwind`), a contained panic must not cascade
/// into a second panic in an innocent sibling that merely touches the
/// same lock. Every shared structure locked across containment
/// boundaries in this workspace holds state that stays structurally
/// valid at all times (caches, counters, result vectors appended to
/// atomically), so recovering the inner guard is always sound — at
/// worst, a cache entry the panicking thread meant to write is absent.
///
/// # Examples
///
/// ```
/// use domain::parallel::lock_recover;
/// use std::sync::Mutex;
/// let m = Mutex::new(5);
/// *lock_recover(&m) += 1;
/// assert_eq!(*lock_recover(&m), 6);
/// ```
pub fn lock_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Splits `0..total` into contiguous chunks, runs `work` on each chunk in
/// its own thread, and returns the per-chunk results in order.
///
/// `work` receives the chunk range as `(start, end)`.
///
/// # Examples
///
/// ```
/// use domain::parallel::par_chunks;
/// let partials = par_chunks(1000, 4, |start, end| (start..end).sum::<u64>());
/// assert_eq!(partials.into_iter().sum::<u64>(), (0..1000).sum());
/// ```
pub fn par_chunks<R: Send>(
    total: u64,
    threads: usize,
    work: impl Fn(u64, u64) -> R + Sync,
) -> Vec<R> {
    let threads = threads.max(1).min(total.max(1) as usize);
    let chunk = total.div_ceil(threads as u64);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                let start = t * chunk;
                let end = ((t + 1) * chunk).min(total);
                let work = &work;
                scope.spawn(move || work(start, end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep thread panicked"))
            .collect()
    })
}

/// A shared claim queue over `0..total`: workers [`claim`](WorkQueue::claim)
/// the next pending index atomically, so finished workers steal remaining
/// work instead of idling behind a static partition.
///
/// # Examples
///
/// ```
/// use domain::parallel::WorkQueue;
/// let q = WorkQueue::new(3);
/// assert_eq!(q.claim(), Some(0));
/// assert_eq!(q.claim(), Some(1));
/// assert_eq!(q.claim(), Some(2));
/// assert_eq!(q.claim(), None);
/// ```
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    total: usize,
}

impl WorkQueue {
    /// A queue over the indices `0..total`, none claimed yet.
    #[must_use]
    pub fn new(total: usize) -> WorkQueue {
        WorkQueue {
            next: AtomicUsize::new(0),
            total,
        }
    }

    /// Claims the next pending index, or `None` when the queue is
    /// drained. Each index is handed out exactly once across all
    /// threads.
    pub fn claim(&self) -> Option<usize> {
        // `fetch_add` past `total` is harmless: later claimers see an
        // even larger index and also return None. usize overflow would
        // need 2^64 calls.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    /// The total number of indices this queue hands out.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Runs `work(worker_id)` on `threads` scoped threads and returns the
/// per-worker results in worker order. `work` typically loops on a
/// shared [`WorkQueue`] until it drains.
///
/// # Examples
///
/// ```
/// use domain::parallel::{par_workers, WorkQueue};
/// let queue = WorkQueue::new(100);
/// let claimed = par_workers(4, |_worker| {
///     let mut sum = 0u64;
///     while let Some(i) = queue.claim() {
///         sum += i as u64;
///     }
///     sum
/// });
/// assert_eq!(claimed.iter().sum::<u64>(), (0..100).sum());
/// ```
pub fn par_workers<R: Send>(threads: usize, work: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = threads.max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let work = &work;
                scope.spawn(move || work(worker))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// Per-worker deques with work stealing, for workloads whose items
/// *spawn further items* while running — the shape a [`WorkQueue`] over
/// a fixed index range cannot express.
///
/// Each worker owns one deque. Owners [`push`](StealPool::push) new
/// items onto the *back* of their own deque and [`pop`](StealPool::pop)
/// from the back too (LIFO — depth-first, cache-warm); a worker whose
/// deque drains scans the other deques and steals from the *front*
/// (FIFO — the oldest item, which in a DFS spawn tree is the largest
/// outstanding subtree, amortizing the steal).
///
/// Termination is tracked by an `outstanding` count of items that are
/// queued *or still running*: a running item may spawn successors, so a
/// worker only quits when `outstanding` reaches zero, not when the
/// deques look momentarily empty. Callers must pair every successful
/// [`pop`](StealPool::pop) with exactly one
/// [`complete`](StealPool::complete) after the item (and all its
/// pushes) finished.
///
/// # Examples
///
/// ```
/// use domain::parallel::{par_workers, StealPool};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// // Count the nodes of a binary tree of depth 10, spawning subtrees.
/// let pool = StealPool::new(4);
/// pool.push(0, 10u32); // the root: a subtree of depth 10
/// let nodes = AtomicU64::new(0);
/// par_workers(4, |worker| {
///     while let Some(depth) = pool.pop(worker) {
///         nodes.fetch_add(1, Ordering::Relaxed);
///         if depth > 0 {
///             pool.push(worker, depth - 1);
///             pool.push(worker, depth - 1);
///         }
///         pool.complete();
///     }
/// });
/// assert_eq!(nodes.into_inner(), (1 << 11) - 1);
/// ```
#[derive(Debug)]
pub struct StealPool<T> {
    deques: Vec<Mutex<VecDeque<T>>>,
    /// Items queued or currently running; zero means globally done.
    outstanding: AtomicUsize,
    steals: AtomicU64,
}

impl<T> StealPool<T> {
    /// A pool of `workers` empty deques (at least one).
    #[must_use]
    pub fn new(workers: usize) -> StealPool<T> {
        StealPool {
            deques: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            outstanding: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Queues `item` on `worker`'s own deque (back — popped first by the
    /// owner) and marks it outstanding. Poisoned deque locks are
    /// recovered ([`lock_recover`]): a panic contained elsewhere never
    /// cascades here.
    ///
    /// # Panics
    ///
    /// Panics when `worker` is out of range.
    pub fn push(&self, worker: usize, item: T) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        lock_recover(&self.deques[worker]).push_back(item);
    }

    /// Claims the next item for `worker`: its own deque's newest item
    /// when one is queued, otherwise the oldest item stolen from another
    /// worker's deque. Spins (yielding) while deques are empty but items
    /// are still running — a running item may spawn more — and returns
    /// `None` only when no item is queued or running anywhere.
    ///
    /// # Panics
    ///
    /// Panics when `worker` is out of range.
    pub fn pop(&self, worker: usize) -> Option<T> {
        loop {
            if let Some(item) = lock_recover(&self.deques[worker]).pop_back() {
                return Some(item);
            }
            let n = self.deques.len();
            for victim in (0..n).filter(|&v| v != worker) {
                if let Some(item) = lock_recover(&self.deques[victim]).pop_front() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                    return Some(item);
                }
            }
            if self.outstanding.load(Ordering::SeqCst) == 0 {
                return None;
            }
            std::thread::yield_now();
        }
    }

    /// Marks one previously [`pop`](StealPool::pop)ped item finished.
    /// Must be called after the item ran and made all its pushes, so the
    /// `outstanding` count never momentarily hits zero with spawned
    /// successors still in flight.
    pub fn complete(&self) {
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
    }

    /// How many times an idle worker took an item from another worker's
    /// deque.
    #[must_use]
    pub fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

/// A sensible default thread count for this machine: the `TNUM_THREADS`
/// environment variable when set to a positive integer (CI pins this for
/// reproducible baselines), otherwise the available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("TNUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_items_exactly_once() {
        for threads in [1, 2, 3, 7] {
            let counts = par_chunks(100, threads, |s, e| e - s);
            assert_eq!(counts.iter().sum::<u64>(), 100);
        }
    }

    #[test]
    fn handles_degenerate_sizes() {
        assert_eq!(par_chunks(0, 4, |s, e| e - s).iter().sum::<u64>(), 0);
        assert_eq!(par_chunks(1, 8, |s, e| e - s).iter().sum::<u64>(), 1);
        assert_eq!(par_chunks(3, 8, |s, e| e - s).iter().sum::<u64>(), 3);
    }

    #[test]
    fn work_queue_hands_out_each_index_once_across_threads() {
        let queue = WorkQueue::new(1000);
        assert_eq!(queue.total(), 1000);
        let seen = par_workers(4, |_| {
            let mut mine = Vec::new();
            while let Some(i) = queue.claim() {
                mine.push(i);
            }
            mine
        });
        let mut all: Vec<usize> = seen.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_queue_claims_nothing() {
        let queue = WorkQueue::new(0);
        assert_eq!(queue.claim(), None);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn steal_pool_runs_every_spawned_item_exactly_once() {
        use std::sync::atomic::AtomicU64;
        // A spawn tree: item d spawns two items d-1; depth 12 yields
        // 2^13 - 1 items in total, each of which must run exactly once
        // regardless of which worker steals it.
        for workers in [1, 2, 4] {
            let pool = StealPool::new(workers);
            pool.push(0, 12u32);
            let ran = AtomicU64::new(0);
            par_workers(workers, |worker| {
                while let Some(depth) = pool.pop(worker) {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if depth > 0 {
                        pool.push(worker, depth - 1);
                        pool.push(worker, depth - 1);
                    }
                    pool.complete();
                }
            });
            assert_eq!(ran.into_inner(), (1 << 13) - 1, "workers={workers}");
        }
    }

    #[test]
    fn steal_pool_owner_pops_lifo_and_thieves_steal_fifo() {
        let pool = StealPool::new(2);
        pool.push(0, 'a');
        pool.push(0, 'b');
        pool.push(0, 'c');
        // The owner sees its own deque newest-first…
        assert_eq!(pool.pop(0), Some('c'));
        // …while a thief with an empty deque takes the victim's oldest.
        assert_eq!(pool.pop(1), Some('a'));
        assert_eq!(pool.steals(), 1);
        assert_eq!(pool.pop(1), Some('b'));
        assert_eq!(pool.steals(), 2);
        for _ in 0..3 {
            pool.complete();
        }
        assert_eq!(pool.pop(0), None);
        assert_eq!(pool.pop(1), None);
    }

    #[test]
    fn steal_pool_single_worker_preserves_dfs_order() {
        // With one worker and no steals, the pool degenerates to a plain
        // LIFO stack — the order a sequential DFS would use.
        let pool = StealPool::new(1);
        pool.push(0, 1);
        pool.push(0, 2);
        let mut order = Vec::new();
        while let Some(v) = pool.pop(0) {
            order.push(v);
            if v == 2 {
                pool.push(0, 3);
            }
            pool.complete();
        }
        assert_eq!(order, vec![2, 3, 1]);
        assert_eq!(pool.steals(), 0);
    }
}
