//! Reusable law checkers for [`AbstractDomain`] implementors.
//!
//! Every domain that plugs into the verification campaign must be an
//! actual lattice Galois-connected to sets of machine words; these
//! checkers make that a one-call test. They enumerate all canonical
//! elements at a small width (the same bounded quantification the
//! campaign uses) and assert:
//!
//! * **lattice laws** — idempotence, commutativity, and absorption of
//!   ⊔/⊓, plus consistency of ⊑ with both (`a ⊑ b ⇔ a ⊔ b = b ⇔
//!   a ⊓ b = a`);
//! * **Galois soundness** — `x ∈ γ(α({x}))` for every representable
//!   value, membership closure of the enumeration
//!   (`x ∈ γ(P) ⇒ P.contains(x)` and vice versa via
//!   [`members`](AbstractDomain::members)), and reductivity of α over
//!   member subsets.
//!
//! The functions panic with a counterexample on the first violation, so
//! they slot directly into `#[test]` bodies.

use crate::{AbstractDomain, WidenDomain};

/// Asserts the lattice laws for every pair of canonical elements at
/// `width` bits.
///
/// # Panics
///
/// Panics with a counterexample on the first law violation.
pub fn assert_lattice_laws<D: AbstractDomain>(width: u32) {
    let elems = D::enumerate_at_width(width);
    assert!(
        !elems.is_empty(),
        "{}: empty enumeration at width {width}",
        D::NAME
    );
    for &a in &elems {
        // Reflexivity and idempotence.
        assert!(a.le(a), "{}: {a:?} not ⊑ itself", D::NAME);
        assert_eq!(a.join(a), a, "{}: join not idempotent at {a:?}", D::NAME);
        assert_eq!(
            a.meet(a),
            Some(a),
            "{}: meet not idempotent at {a:?}",
            D::NAME
        );
        for &b in &elems {
            let j = a.join(b);
            // Commutativity.
            assert_eq!(
                j,
                b.join(a),
                "{}: join not commutative on {a:?}, {b:?}",
                D::NAME
            );
            assert_eq!(
                a.meet(b),
                b.meet(a),
                "{}: meet not commutative on {a:?}, {b:?}",
                D::NAME
            );
            // Join is an upper bound, consistent with ⊑.
            assert!(
                a.le(j) && b.le(j),
                "{}: join not an upper bound on {a:?}, {b:?}",
                D::NAME
            );
            assert_eq!(
                a.le(b),
                j == b,
                "{}: ⊑ vs join inconsistent on {a:?}, {b:?}",
                D::NAME
            );
            // Meet is a lower bound; ⊥ (None) only without common members.
            match a.meet(b) {
                Some(m) => {
                    assert!(
                        m.le(a) && m.le(b),
                        "{}: meet not a lower bound on {a:?}, {b:?}",
                        D::NAME
                    );
                    if a.le(b) {
                        assert_eq!(m, a, "{}: ⊑ vs meet inconsistent on {a:?}, {b:?}", D::NAME);
                    }
                    // Absorption: a ⊔ (a ⊓ b) = a.
                    assert_eq!(
                        a.join(m),
                        a,
                        "{}: absorption (join) fails on {a:?}, {b:?}",
                        D::NAME
                    );
                }
                None => {
                    for x in a.members(width) {
                        assert!(
                            !b.contains(x),
                            "{}: meet of {a:?}, {b:?} is ⊥ but both contain {x}",
                            D::NAME
                        );
                    }
                }
            }
            // Absorption: a ⊓ (a ⊔ b) = a.
            assert_eq!(
                a.meet(j),
                Some(a),
                "{}: absorption (meet) fails on {a:?}, {b:?}",
                D::NAME
            );
        }
    }
}

/// Asserts the Galois soundness conditions at `width` bits.
///
/// # Panics
///
/// Panics with a counterexample on the first violation.
pub fn assert_galois_soundness<D: AbstractDomain>(width: u32) {
    let lim: u64 = 1u64.checked_shl(width).expect("width < 64") - 1;
    // Extensivity on singletons: x ∈ γ(α({x})), and α({x}) is a constant.
    for x in 0..=lim {
        let a = D::constant(x);
        assert!(a.contains(x), "{}: {x} ∉ γ(α({{{x}}}))", D::NAME);
        assert_eq!(
            a.as_constant(),
            Some(x),
            "{}: α({{{x}}}) not constant",
            D::NAME
        );
    }
    let elems = D::enumerate_at_width(width);
    for &p in &elems {
        let members = p.members(width);
        assert!(!members.is_empty(), "{}: {p:?} concretizes to ∅", D::NAME);
        // members() agrees with contains() over the whole width window.
        for x in 0..=lim {
            assert_eq!(
                p.contains(x),
                members.contains(&x),
                "{}: members/contains disagree on {x} for {p:?}",
                D::NAME
            );
        }
        // α over the members is reductive: α(γ(P)) ⊑ P.
        let back = D::abstract_of(members.iter().copied()).expect("non-empty member set abstracts");
        assert!(back.le(p), "{}: α(γ({p:?})) = {back:?} ⋢ {p:?}", D::NAME);
        // ⊑ agrees with γ-inclusion over the enumeration.
        for &q in &elems {
            if p.le(q) {
                for &x in &members {
                    assert!(q.contains(x), "{}: {p:?} ⊑ {q:?} but {x} escapes", D::NAME);
                }
            }
        }
        // Truncation at the enumeration width is the identity on canonical
        // elements, and ⊤ covers everything.
        assert!(p.le(D::top()), "{}: {p:?} ⋢ ⊤", D::NAME);
        assert!(p.le(D::top_at_width(width)), "{}: {p:?} ⋢ ⊤|w", D::NAME);
    }
}

/// Asserts the widening laws of [`WidenDomain`] over the canonical
/// enumeration at `width` bits, plus termination on randomized width-64
/// ascending chains.
///
/// * **covering**: for every pair with `a ⊑ b`, both `a` and `b` are
///   ⊑ `a ∇ b` (the contract callers rely on for soundness);
/// * **stability**: `a ∇ a = a` — a loop head that stopped growing stops
///   widening;
/// * **termination**: `max_steps` bounds every chain
///   `xᵢ₊₁ = xᵢ ∇ (xᵢ ⊔ yᵢ)` driven by `rounds` random `yᵢ` streams.
///
/// # Panics
///
/// Panics with a counterexample on the first violation.
pub fn assert_widening_laws<D: WidenDomain>(width: u32, rounds: u32, max_steps: u32, seed: u64) {
    let elems = D::enumerate_at_width(width);
    for &a in &elems {
        assert_eq!(a.widen(a), a, "{}: {a:?} ∇ {a:?} ≠ {a:?}", D::NAME);
        for &b in &elems {
            if !a.le(b) {
                continue;
            }
            let w = a.widen(b);
            assert!(
                a.le(w) && b.le(w),
                "{}: {a:?} ∇ {b:?} = {w:?} is not an upper bound",
                D::NAME
            );
        }
    }
    // Termination: feed random growth at full width; the chain must
    // stabilize well before max_steps.
    let mut rng = crate::rng::SplitMix64::new(seed);
    for round in 0..rounds {
        let mut x = D::random(&mut rng);
        let mut steps = 0u32;
        loop {
            let grown = x.join(D::random(&mut rng));
            let next = x.widen(grown);
            assert!(
                x.le(next) && grown.le(next),
                "{}: widening not covering at {x:?} ∇ {grown:?}",
                D::NAME
            );
            if next == x {
                break;
            }
            x = next;
            steps += 1;
            assert!(
                steps < max_steps,
                "{}: widening chain still growing after {max_steps} steps (round {round})",
                D::NAME
            );
        }
    }
}

/// Asserts that [`AbstractDomain::random`] /
/// [`AbstractDomain::random_member`] produce well-formed samples: every
/// sampled member belongs to its element.
///
/// # Panics
///
/// Panics on the first sampled member that escapes its element.
pub fn assert_sampling_sound<D: AbstractDomain>(rounds: u32, seed: u64) {
    let mut rng = crate::rng::SplitMix64::new(seed);
    for _ in 0..rounds {
        let d = D::random(&mut rng);
        let x = d.random_member(&mut rng);
        assert!(
            d.contains(x),
            "{}: sampled member {x:#x} escapes {d:?}",
            D::NAME
        );
    }
}
