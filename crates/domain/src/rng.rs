//! A minimal deterministic PRNG (SplitMix64) for the randomized
//! verification campaigns and property tests.
//!
//! The workspace is dependency-free, so this stands in for `rand`: the
//! paper's §VII-D spot checks and the 64-bit property suites only need a
//! fast, seedable, well-mixed `u64` stream — exactly what SplitMix64
//! (Steele, Lea & Flood, OOPSLA 2014) provides. Determinism in the seed is
//! load-bearing: every randomized test in the workspace is reproducible.

/// SplitMix64: a 64-bit state, one add + three xor-shift-multiply steps
/// per output.
///
/// # Examples
///
/// ```
/// use domain::rng::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic in the seed
/// assert!(a.below(10) < 10);
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub const fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The next 32-bit output (the high half, which mixes best).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The next 32-bit output, reinterpreted as signed.
    #[inline]
    pub fn next_i32(&mut self) -> i32 {
        self.next_u32() as i32
    }

    /// A value in `[0, n)`.
    ///
    /// Uses a plain modulo; the bias is ≤ `n / 2^64`, irrelevant for test
    /// generation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.next_u64() % n
    }

    /// A value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[inline]
    pub fn ratio(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A fair coin.
    #[inline]
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        let mut c = SplitMix64::new(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn reference_values() {
        // First outputs for seed 0, from the published SplitMix64
        // reference implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
    }

    #[test]
    fn bounded_helpers_stay_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let x = r.range(5, 9);
            assert!((5..9).contains(&x));
        }
    }

    #[test]
    fn ratio_is_roughly_calibrated() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.ratio(3, 10)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn bits_are_balanced() {
        let mut r = SplitMix64::new(3);
        let mut ones = 0u32;
        for _ in 0..1024 {
            ones += r.next_u64().count_ones();
        }
        let total = 1024 * 64;
        assert!((total * 45 / 100..total * 55 / 100).contains(&ones));
    }
}
