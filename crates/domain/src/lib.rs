//! # domain — the domain-generic abstraction layer
//!
//! The tnum paper validates one abstract domain (tristate numbers) with a
//! reusable *method*: bounded verification of the soundness predicate
//! (Eqn. 11, §III-A), comparison against the best abstract transformer
//! `α ∘ f ∘ γ` (§II-A), and head-to-head precision measurement against the
//! Regehr–Duongsaa known-bits baseline. This crate captures the vocabulary
//! that method needs, so that *any* bit-level or value-range domain can be
//! plugged into the same verification campaign, the same reduced-product
//! analyzer, and the same benchmarks:
//!
//! * [`AbstractDomain`] — the lattice (⊑ as [`le`](AbstractDomain::le),
//!   join ⊔, meet ⊓ with ⊥ out-of-band), the Galois connection (α as
//!   [`abstract_of`](AbstractDomain::abstract_of), γ membership as
//!   [`contains`](AbstractDomain::contains), bounded enumeration as
//!   [`enumerate_at_width`](AbstractDomain::enumerate_at_width)), and the
//!   width machinery ([`truncate`](AbstractDomain::truncate) /
//!   [`cast`](AbstractDomain::cast)) every campaign quantifies over;
//! * [`ArithDomain`] / [`BitwiseDomain`] — the abstract transformers
//!   (`opT` in the paper's notation) paired with the concrete BPF ALU
//!   semantics (`opC`) by the `tnum_verify::ops` catalog;
//! * [`RefineFrom`] — the cross-refinement hook that lets two domains form
//!   a *reduced product* (the kernel's `reg_bounds_sync` pattern), used by
//!   `verifier::Product<A, B>`;
//! * [`rng`] — a tiny deterministic PRNG (SplitMix64) backing the
//!   randomized width-64 spot checks and the property-test suites (this
//!   workspace has no third-party dependencies);
//! * [`laws`] — reusable checkers for the lattice laws and the Galois
//!   soundness condition `x ∈ γ(α({x}))`, shared by every implementor's
//!   test suite.
//!
//! ## The paper's vocabulary, as code
//!
//! | Paper (§II)                  | Trait surface                                  |
//! |------------------------------|------------------------------------------------|
//! | `P ⊑ Q` (abstract order)     | `p.le(q)`                                      |
//! | `P ⊔ Q` (join)               | `p.join(q)`                                    |
//! | `P ⊓ Q` (meet, may be ⊥)     | `p.meet(q) -> Option<D>`                       |
//! | `α(C)` (abstraction)         | `D::abstract_of(values) -> Option<D>`          |
//! | `x ∈ γ(P)` (concretization)  | `p.contains(x)`; `p.members(w)` enumerates γ   |
//! | `opT` (abstract transformer) | `ArithDomain` / `BitwiseDomain` methods        |
//! | `opC` (concrete operation)   | the `concrete_op` half of `tnum_verify::Op2`   |
//!
//! ⊥ has no in-band representation: all three shipped domains (tnums,
//! known-bits, bounds) only represent non-empty concretizations, exactly
//! as in the kernel, so contradictions surface as `None` (from `meet`,
//! `abstract_of` of ∅, or `RefineFrom::refine_from`) and the consumer
//! treats them as dead paths.
//!
//! ## Plugging in a new domain
//!
//! To add a domain (say, signed intervals or congruences):
//!
//! 1. implement [`AbstractDomain`] — the lattice and Galois methods plus
//!    [`enumerate_at_width`](AbstractDomain::enumerate_at_width), which
//!    must yield every canonical element whose concretization fits in
//!    `width` bits (this is what makes the bounded verification *bounded
//!    and complete*);
//! 2. implement [`ArithDomain`] and [`BitwiseDomain`] with the domain's
//!    transfer functions (conservative fallbacks to
//!    [`top_at_width`](AbstractDomain::top_at_width) are always sound);
//! 3. run `domain::laws::assert_lattice_laws` and
//!    `domain::laws::assert_galois_soundness` over the enumeration in the
//!    domain's tests;
//! 4. the generic campaign (`tnum_verify::campaign::run_campaign::<D>`),
//!    the spot checker, and the benches now accept the new domain with no
//!    further wiring;
//! 5. optionally implement [`RefineFrom`] against an existing domain to
//!    join a reduced product (`verifier::Product`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod laws;
pub mod parallel;
pub mod rng;

use crate::rng::SplitMix64;

/// A bit-level or value-range abstract domain over 64-bit machine words.
///
/// Implementors are small `Copy` values (the kernel's `struct tnum` is two
/// words; bounds are four) representing *non-empty* sets of concrete
/// `u64`s. The trait packages the three faces the paper's method needs:
/// the lattice, the Galois connection, and bit-width manipulation.
pub trait AbstractDomain:
    Copy + Clone + PartialEq + core::fmt::Debug + Send + Sync + Sized + 'static
{
    /// Short human-readable domain name, used in reports and bench tables.
    const NAME: &'static str;

    /// ⊤ — the abstraction of every 64-bit value.
    fn top() -> Self;

    /// ⊥ — the abstraction of the empty set.
    ///
    /// None of the shipped domains represents ⊥ in-band (exactly as in the
    /// kernel), so the default returns `None`; contradiction is reported
    /// out-of-band by [`meet`](Self::meet) and
    /// [`RefineFrom::refine_from`].
    fn bottom() -> Option<Self> {
        None
    }

    /// The abstract order ⊑: `self ⊑ other` iff γ(self) ⊆ γ(other).
    fn le(self, other: Self) -> bool;

    /// Join ⊔ — least upper bound: the tightest element covering both.
    fn join(self, other: Self) -> Self;

    /// Meet ⊓ — greatest lower bound; `None` is ⊥ (no common member).
    fn meet(self, other: Self) -> Option<Self>;

    /// The abstraction function α over a set of concrete values; `None`
    /// is α(∅) = ⊥.
    fn abstract_of<I: IntoIterator<Item = u64>>(values: I) -> Option<Self>;

    /// Membership in the concretization: `x ∈ γ(self)`.
    fn contains(self, x: u64) -> bool;

    /// Cheap may-equality used by containers (reduced products, register
    /// files) to short-circuit joins and inclusion checks before falling
    /// into the pointwise lattice operations.
    ///
    /// Contract: a `true` result must imply `γ(self) = γ(other)` (no
    /// false positives); `false` for semantically equal elements is
    /// allowed (an identity-based override may miss equal copies). The
    /// default is plain structural equality, which is already O(1) for
    /// the shipped word-sized domains; a heap-backed domain (e.g. a
    /// future relational one) would override this with a pointer-identity
    /// test.
    fn fast_eq(&self, other: &Self) -> bool {
        self == other
    }

    /// Every canonical element whose concretization is a subset of
    /// `[0, 2^width)` — the quantification space of the bounded
    /// verification campaign (the analogue of the paper's "for bitvectors
    /// of width n" in Eqn. 11).
    fn enumerate_at_width(width: u32) -> Vec<Self>;

    /// γ(self) restricted to width `width`, materialized. Only call at
    /// small widths (the campaign uses ≤ 10 bits).
    fn members(self, width: u32) -> Vec<u64>;

    /// The exact abstraction of one concrete value.
    fn constant(value: u64) -> Self {
        Self::abstract_of([value]).expect("singleton sets are never empty")
    }

    /// Whether the element pins a single concrete value, and which.
    fn as_constant(self) -> Option<u64>;

    /// Reduction modulo `2^width`: a sound abstraction of
    /// `{x mod 2^width : x ∈ γ(self)}`. `truncate(64)` is the identity.
    fn truncate(self, width: u32) -> Self;

    /// The kernel's `tnum_cast`: keep the low `bytes * 8` bits (zero
    /// extended). `cast(8)` is the identity.
    fn cast(self, bytes: u32) -> Self {
        self.truncate(bytes.min(8) * 8)
    }

    /// ⊤ restricted to `width` bits: the abstraction of `[0, 2^width)`.
    fn top_at_width(width: u32) -> Self {
        Self::top().truncate(width)
    }

    /// A uniformly sampled element at the full 64-bit width, for the
    /// randomized spot-check campaign (§VII-D).
    fn random(rng: &mut SplitMix64) -> Self;

    /// A uniformly sampled member of γ(self), for the same campaign.
    fn random_member(self, rng: &mut SplitMix64) -> u64;
}

/// Abstract transformers for the arithmetic BPF ALU operations.
///
/// Every method is the `opT` half of a verification pair; the matching
/// `opC` (wrapping add/sub/mul, BPF `x / 0 = 0`, `x % 0 = x`) lives in the
/// `tnum_verify::ops` catalog. Transformers operate at the full 64-bit
/// width; the campaign truncates results to the verification width, which
/// is exact for these operators (carries and partial products only
/// propagate upward).
pub trait ArithDomain: AbstractDomain {
    /// Abstract wrapping addition.
    fn abs_add(self, rhs: Self) -> Self;
    /// Abstract wrapping subtraction.
    fn abs_sub(self, rhs: Self) -> Self;
    /// Abstract wrapping multiplication.
    fn abs_mul(self, rhs: Self) -> Self;
    /// Abstract unsigned division with BPF `x / 0 = 0` semantics.
    fn abs_div(self, rhs: Self) -> Self;
    /// Abstract unsigned remainder with BPF `x % 0 = x` semantics.
    fn abs_rem(self, rhs: Self) -> Self;
}

/// Abstract transformers for the bitwise and shift BPF ALU operations.
///
/// Shift amounts are themselves abstract values and follow the 64-bit BPF
/// instruction semantics (`amount & 63`) at every verification width; the
/// `width` parameter only affects the *value* lanes (most relevantly the
/// sign position of [`abs_ashr`](Self::abs_ashr)).
pub trait BitwiseDomain: AbstractDomain {
    /// Abstract bitwise AND.
    fn abs_and(self, rhs: Self) -> Self;
    /// Abstract bitwise OR.
    fn abs_or(self, rhs: Self) -> Self;
    /// Abstract bitwise XOR.
    fn abs_xor(self, rhs: Self) -> Self;
    /// Abstract left shift by an abstract amount (masked `& 63`).
    fn abs_shl(self, rhs: Self, width: u32) -> Self;
    /// Abstract logical right shift by an abstract amount (masked `& 63`).
    fn abs_lshr(self, rhs: Self, width: u32) -> Self;
    /// Abstract arithmetic right shift by an abstract amount, with the
    /// sign bit taken at `width`.
    fn abs_ashr(self, rhs: Self, width: u32) -> Self;
}

/// The widening operator ∇ — the extra ingredient a domain needs before a
/// fixpoint engine may iterate it over *cyclic* control flow.
///
/// `old.widen(newer)` is called at a loop head when the state there grows:
/// `old` is the previously recorded abstraction and `newer` is `old ⊔
/// incoming` (so `newer` is always an upper bound of `old`). The result
/// must satisfy the two classic widening laws (Cousot & Cousot; the same
/// contract as Miné's DBM widening):
///
/// * **covering**: `old ⊑ old ∇ newer` and `newer ⊑ old ∇ newer` — the
///   widened state over-approximates everything seen so far (soundness of
///   the fixpoint);
/// * **termination**: every chain `x₀, x₁ = x₀ ∇ y₁, x₂ = x₁ ∇ y₂, …`
///   with growing `yᵢ` stabilizes after finitely many steps, whatever the
///   `yᵢ` are — this is what bounds the analysis of a loop whose concrete
///   trip count the domain cannot see.
///
/// Finite-height domains (tnums, known-bits: each trit only ever moves
/// known → unknown) may simply use their join. Infinite-ascending-chain
/// domains (intervals) must jump: the shipped `Bounds` widening snaps a
/// growing endpoint to the next value of a small threshold set
/// `{0, 1, i32::MAX, u32::MAX, i64::MAX as u64, u64::MAX}` instead of
/// creeping one trip at a time.
///
/// Checked for every implementor by [`laws::assert_widening_laws`].
pub trait WidenDomain: AbstractDomain {
    /// `self ∇ newer`: an upper bound of both that guarantees termination
    /// of repeated widening. `newer` is expected to satisfy
    /// `self ⊑ newer` (callers pass `self ⊔ incoming`).
    #[must_use]
    fn widen(self, newer: Self) -> Self;
}

/// Cross-refinement between two abstract domains tracking the same value —
/// the hook that turns a pair of domains into a *reduced* product.
///
/// `refine_from` returns the tightening of `self` by everything `other`
/// knows, or `None` when the two contradict (their concretizations are
/// disjoint — the product's ⊥). This is the trait-level rendering of the
/// kernel's `reg_bounds_sync`: bounds are refined by the tnum
/// (`__reg_bound_offset` + intersection) and the tnum is refined by the
/// range (`tnum_range` over `[umin, umax]`).
///
/// Laws (checked by the product's tests):
///
/// * **sound**: `x ∈ γ(self) ∧ x ∈ γ(other)` ⇒ refinement keeps `x`;
/// * **reductive**: the result is ⊑ `self`;
/// * `None` only when `γ(self) ∩ γ(other) = ∅`.
pub trait RefineFrom<O>: Sized {
    /// Tightens `self` using the information carried by `other`.
    fn refine_from(self, other: &O) -> Option<Self>;
}
