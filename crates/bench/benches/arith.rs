//! Criterion microbenchmarks for the O(1) kernel add/sub vs the O(n)
//! Regehr–Duongsaa ripple operators (the paper's efficiency claim for
//! Theorems 6/22), plus the remaining tnum operator suite.

use bitwise_domain::{ripple_add, ripple_sub};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tnum::Tnum;

fn random_pairs(n: usize, seed: u64) -> Vec<(Tnum, Tnum)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let m1: u64 = rng.gen();
            let v1: u64 = rng.gen::<u64>() & !m1;
            let m2: u64 = rng.gen();
            let v2: u64 = rng.gen::<u64>() & !m2;
            (Tnum::new(v1, m1).unwrap(), Tnum::new(v2, m2).unwrap())
        })
        .collect()
}

fn bench_add_sub(c: &mut Criterion) {
    let inputs = random_pairs(1024, 3);
    let mut group = c.benchmark_group("add_sub");
    let algos: Vec<(&str, fn(Tnum, Tnum) -> Tnum)> = vec![
        ("tnum_add (O(1))", |a, b| a.add(b)),
        ("ripple_add (O(n))", ripple_add),
        ("tnum_sub (O(1))", |a, b| a.sub(b)),
        ("ripple_sub (O(n))", ripple_sub),
    ];
    for (name, f) in algos {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inputs, |b, inputs| {
            b.iter(|| {
                let mut acc = Tnum::ZERO;
                for &(p, q) in inputs {
                    acc = acc.xor(f(black_box(p), black_box(q)));
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_bitwise_and_shifts(c: &mut Criterion) {
    let inputs = random_pairs(1024, 5);
    let mut group = c.benchmark_group("bitwise_and_shifts");
    let algos: Vec<(&str, fn(Tnum, Tnum) -> Tnum)> = vec![
        ("and", |a, b| a.and(b)),
        ("or", |a, b| a.or(b)),
        ("xor", |a, b| a.xor(b)),
        ("lshift_by_7", |a, _| a.lshift(7)),
        ("rshift_by_7", |a, _| a.rshift(7)),
        ("arshift_by_7", |a, _| a.arshift(7)),
        ("union", |a, b| a.union(b)),
        ("intersect_kernel", |a, b| a.intersect_kernel(b)),
    ];
    for (name, f) in algos {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inputs, |b, inputs| {
            b.iter(|| {
                let mut acc = Tnum::ZERO;
                for &(p, q) in inputs {
                    acc = acc.xor(f(black_box(p), black_box(q)));
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_galois(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    // Tnums with exactly 10 unknown bits: |γ| = 1024 members each.
    let tnums: Vec<Tnum> = (0..64)
        .map(|_| {
            let mut mask = 0u64;
            while mask.count_ones() < 10 {
                mask |= 1 << (rng.gen::<u32>() % 64);
            }
            let value = rng.gen::<u64>() & !mask;
            Tnum::new(value, mask).unwrap()
        })
        .collect();
    let mut group = c.benchmark_group("galois");
    group.bench_function("concretize_1024_members", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &t in &tnums {
                for x in t.concretize() {
                    acc = acc.wrapping_add(x);
                }
            }
            acc
        })
    });
    group.bench_function("abstract_of_1024_members", |b| {
        let members: Vec<u64> = tnums[0].concretize().collect();
        b.iter(|| Tnum::abstract_of(members.iter().copied()).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full-workspace bench run tractable on a
    // small container; raise for publication-quality statistics.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_add_sub, bench_bitwise_and_shifts, bench_galois
}
criterion_main!(benches);
