//! Microbenchmarks for the O(1) kernel add/sub vs the O(n)
//! Regehr–Duongsaa ripple operators (the paper's efficiency claim for
//! Theorems 6/22), the remaining tnum operator suite, and — via the
//! domain-generic catalog — the same arithmetic transfer functions across
//! all three shipped domains (tnum, known-bits, bounds).
//!
//! Run with: `cargo bench -p bench --bench arith`

use bench::harness::Group;
use bitwise_domain::{ripple_add, ripple_sub, KnownBits};
use domain::rng::SplitMix64;
use domain::AbstractDomain;
use interval_domain::Bounds;
use tnum::Tnum;
use tnum_verify::ops::OpCatalog;

fn random_pairs<D: AbstractDomain>(n: usize, seed: u64) -> Vec<(D, D)> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (D::random(&mut rng), D::random(&mut rng)))
        .collect()
}

type TnumAlgo = (&'static str, fn(Tnum, Tnum) -> Tnum);

fn bench_add_sub() {
    let inputs: Vec<(Tnum, Tnum)> = random_pairs(1024, 3);
    let mut group = Group::new("add_sub");
    let algos: Vec<TnumAlgo> = vec![
        ("tnum_add (O(1))", |a, b| a.add(b)),
        ("ripple_add (O(n))", ripple_add),
        ("tnum_sub (O(1))", |a, b| a.sub(b)),
        ("ripple_sub (O(n))", ripple_sub),
    ];
    for (name, f) in algos {
        group.bench(name, || {
            let mut acc = Tnum::ZERO;
            for &(p, q) in &inputs {
                acc = acc.xor(f(p, q));
            }
            acc
        });
    }
    group.finish();
}

/// The same abstract operators, one generic code path, three domains —
/// the cost of swapping the numerical domain behind the trait interface.
fn bench_across_domains() {
    fn domain_rows<D: domain::ArithDomain + domain::BitwiseDomain>(group: &mut Group, seed: u64) {
        let inputs: Vec<(D, D)> = random_pairs(1024, seed);
        for op in [
            OpCatalog::<D>::add(),
            OpCatalog::<D>::sub(),
            OpCatalog::<D>::mul(),
            OpCatalog::<D>::and(),
        ] {
            group.bench(&format!("{}/{}", D::NAME, op.name), || {
                let mut alive = 0u64;
                for &(p, q) in &inputs {
                    let r = (op.abstract_op)(p, q, 64);
                    alive = alive.wrapping_add(u64::from(r.as_constant().is_some()));
                }
                alive
            });
        }
    }
    let mut group = Group::new("across_domains");
    domain_rows::<Tnum>(&mut group, 17);
    domain_rows::<KnownBits>(&mut group, 17);
    domain_rows::<Bounds>(&mut group, 17);
    group.finish();
}

fn bench_bitwise_and_shifts() {
    let inputs: Vec<(Tnum, Tnum)> = random_pairs(1024, 5);
    let mut group = Group::new("bitwise_and_shifts");
    let algos: Vec<TnumAlgo> = vec![
        ("and", |a, b| a.and(b)),
        ("or", |a, b| a.or(b)),
        ("xor", |a, b| a.xor(b)),
        ("lshift_by_7", |a, _| a.lshift(7)),
        ("rshift_by_7", |a, _| a.rshift(7)),
        ("arshift_by_7", |a, _| a.arshift(7)),
        ("union", |a, b| a.union(b)),
        ("intersect_kernel", |a, b| a.intersect_kernel(b)),
    ];
    for (name, f) in algos {
        group.bench(name, || {
            let mut acc = Tnum::ZERO;
            for &(p, q) in &inputs {
                acc = acc.xor(f(p, q));
            }
            acc
        });
    }
    group.finish();
}

fn bench_galois() {
    let mut rng = SplitMix64::new(11);
    // Tnums with exactly 10 unknown bits: |γ| = 1024 members each.
    let tnums: Vec<Tnum> = (0..64)
        .map(|_| {
            let mut mask = 0u64;
            while mask.count_ones() < 10 {
                mask |= 1 << (rng.next_u32() % 64);
            }
            let value = rng.next_u64() & !mask;
            Tnum::new(value, mask).unwrap()
        })
        .collect();
    let mut group = Group::new("galois");
    group.bench("concretize_1024_members", || {
        let mut acc = 0u64;
        for &t in &tnums {
            for x in t.concretize() {
                acc = acc.wrapping_add(x);
            }
        }
        acc
    });
    let members: Vec<u64> = tnums[0].concretize().collect();
    group.bench("abstract_of_1024_members", || {
        Tnum::abstract_of(members.iter().copied()).unwrap()
    });
    group.finish();
}

fn main() {
    bench_add_sub();
    bench_across_domains();
    bench_bitwise_and_shifts();
    bench_galois();
}
