//! Microbenchmarks for the three multiplication algorithms of §IV-B
//! (plus the naive baseline and the proof-friendly form) — statistical
//! companion to the `fig5_mul_performance` binary — and the generic
//! `mul` transfer function across all three domains.
//!
//! Run with: `cargo bench -p bench --bench mul`

use bench::harness::Group;
use bitwise_domain::{bitwise_mul, bitwise_mul_naive, ripple_mul, KnownBits};
use domain::rng::SplitMix64;
use domain::{AbstractDomain, ArithDomain};
use interval_domain::Bounds;
use tnum::mul::our_mul_simplified;
use tnum::Tnum;

fn random_pairs<D: AbstractDomain>(n: usize, seed: u64) -> Vec<(D, D)> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| (D::random(&mut rng), D::random(&mut rng)))
        .collect()
}

type TnumAlgo = (&'static str, fn(Tnum, Tnum) -> Tnum);

fn bench_muls() {
    let inputs: Vec<(Tnum, Tnum)> = random_pairs(1024, 42);
    let mut group = Group::new("tnum_mul");
    let algos: Vec<TnumAlgo> = vec![
        ("our_mul", |a, b| a.mul(b)),
        ("our_mul_simplified", our_mul_simplified),
        ("kern_mul", |a, b| a.mul_kernel_legacy(b)),
        ("bitwise_mul", bitwise_mul),
        ("bitwise_mul_naive", bitwise_mul_naive),
        ("ripple_mul", ripple_mul),
    ];
    for (name, f) in algos {
        group.bench(name, || {
            let mut acc = Tnum::ZERO;
            for &(p, q) in &inputs {
                acc = acc.xor(f(p, q));
            }
            acc
        });
    }
    group.finish();
}

/// `abs_mul` through the trait object of each domain: tnum's `our_mul`,
/// known-bits' bridged `bitwise_mul`, and the interval hull product.
fn bench_mul_across_domains() {
    fn row<D: ArithDomain>(group: &mut Group) {
        let inputs: Vec<(D, D)> = random_pairs(1024, 23);
        group.bench(D::NAME, || {
            let mut alive = 0u64;
            for &(p, q) in &inputs {
                let r = p.abs_mul(q);
                alive = alive.wrapping_add(u64::from(r.as_constant().is_some()));
            }
            alive
        });
    }
    let mut group = Group::new("mul_across_domains");
    row::<Tnum>(&mut group);
    row::<KnownBits>(&mut group);
    row::<Bounds>(&mut group);
    group.finish();
}

fn bench_mul_sparsity() {
    // our_mul exits once the multiplier is exhausted, so sparse multipliers
    // are faster — an ablation of the early-exit strength reduction
    // (Lemma 11).
    let mut group = Group::new("mul_by_multiplier_population");
    for bits in [4u32, 16, 64] {
        let mut rng = SplitMix64::new(7);
        let inputs: Vec<(Tnum, Tnum)> = (0..1024)
            .map(|_| {
                let keep = tnum::low_bits(bits);
                let m1: u64 = rng.next_u64() & keep;
                let v1: u64 = rng.next_u64() & !m1 & keep;
                let m2: u64 = rng.next_u64();
                let v2: u64 = rng.next_u64() & !m2;
                (Tnum::new(v1, m1).unwrap(), Tnum::new(v2, m2).unwrap())
            })
            .collect();
        group.bench(&format!("our_mul/{bits}"), || {
            let mut acc = Tnum::ZERO;
            for &(p, q) in &inputs {
                acc = acc.xor(p.mul(q));
            }
            acc
        });
        group.bench(&format!("our_mul_simplified/{bits}"), || {
            let mut acc = Tnum::ZERO;
            for &(p, q) in &inputs {
                acc = acc.xor(our_mul_simplified(p, q));
            }
            acc
        });
    }
    group.finish();
}

fn main() {
    bench_muls();
    bench_mul_across_domains();
    bench_mul_sparsity();
}
