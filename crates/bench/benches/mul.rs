//! Criterion microbenchmarks for the three multiplication algorithms of
//! §IV-B (plus the naive baseline and the proof-friendly form) —
//! statistical companion to the `fig5_mul_performance` binary.

use bitwise_domain::{bitwise_mul, bitwise_mul_naive, ripple_mul};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tnum::mul::our_mul_simplified;
use tnum::Tnum;

fn random_pairs(n: usize, seed: u64) -> Vec<(Tnum, Tnum)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let m1: u64 = rng.gen();
            let v1: u64 = rng.gen::<u64>() & !m1;
            let m2: u64 = rng.gen();
            let v2: u64 = rng.gen::<u64>() & !m2;
            (Tnum::new(v1, m1).unwrap(), Tnum::new(v2, m2).unwrap())
        })
        .collect()
}

fn bench_muls(c: &mut Criterion) {
    let inputs = random_pairs(1024, 42);
    let mut group = c.benchmark_group("tnum_mul");
    let algos: Vec<(&str, fn(Tnum, Tnum) -> Tnum)> = vec![
        ("our_mul", |a, b| a.mul(b)),
        ("our_mul_simplified", our_mul_simplified),
        ("kern_mul", |a, b| a.mul_kernel_legacy(b)),
        ("bitwise_mul", bitwise_mul),
        ("bitwise_mul_naive", bitwise_mul_naive),
        ("ripple_mul", ripple_mul),
    ];
    for (name, f) in algos {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inputs, |b, inputs| {
            b.iter(|| {
                let mut acc = Tnum::ZERO;
                for &(p, q) in inputs {
                    acc = acc.xor(f(black_box(p), black_box(q)));
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_mul_sparsity(c: &mut Criterion) {
    // our_mul exits once the multiplier is exhausted, so sparse multipliers
    // are faster — an ablation of the early-exit strength reduction
    // (Lemma 11).
    let mut group = c.benchmark_group("mul_by_multiplier_population");
    for bits in [4u32, 16, 64] {
        let mut rng = StdRng::seed_from_u64(7);
        let inputs: Vec<(Tnum, Tnum)> = (0..1024)
            .map(|_| {
                let keep = tnum::low_bits(bits);
                let m1: u64 = rng.gen::<u64>() & keep;
                let v1: u64 = rng.gen::<u64>() & !m1 & keep;
                let m2: u64 = rng.gen();
                let v2: u64 = rng.gen::<u64>() & !m2;
                (Tnum::new(v1, m1).unwrap(), Tnum::new(v2, m2).unwrap())
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("our_mul", bits), &inputs, |b, inputs| {
            b.iter(|| {
                let mut acc = Tnum::ZERO;
                for &(p, q) in inputs {
                    acc = acc.xor(p.mul(q));
                }
                acc
            })
        });
        group.bench_with_input(
            BenchmarkId::new("our_mul_simplified", bits),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let mut acc = Tnum::ZERO;
                    for &(p, q) in inputs {
                        acc = acc.xor(our_mul_simplified(p, q));
                    }
                    acc
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Short windows keep the full-workspace bench run tractable on a
    // small container; raise for publication-quality statistics.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_muls, bench_mul_sparsity
}
criterion_main!(benches);
