//! Benchmarks of the exploration strategies over loopy programs: a
//! masked-memset loop swept across trip counts × widening delays
//! (fixpoint strategy) × unroll bounds (path-sensitive strategy), the
//! two-back-edge pruning workload, an unbounded loop (pure widening
//! cost), and the VM executing the same loops for scale.
//!
//! For the fixpoint, trip counts at or below the widening delay are
//! analyzed with full precision and cost grows with the trip count;
//! above it, widening extrapolates and the cost flattens. The
//! path-sensitive strategy trades the same way on `unroll_k` — per-trip
//! exact states below the bound, widening fallback above it — but pays
//! per *path*, with the visited table pruning re-convergent ones. The
//! sweep measures both sides of both knobs.
//!
//! Every configuration also reports its `AnalysisStats` — deep copies
//! vs. shared clones vs. short-circuited joins under the copy-on-write
//! state layer, plus the pruning-table ledger (states pruned / subset
//! checks / fingerprint rejects / evictions) and the
//! `bytes_materialized` working-set proxy of the chunked stack frames —
//! which is the regression surface `fixpoint_guard` checks in CI
//! (including the deep-unroll `subset_checks` gate).
//!
//! Run with: `cargo bench -p bench --bench fixpoint`
//!
//! Set `BENCH_JSON=path.json` to also write the machine-readable
//! baseline (`BENCH_PR9.json` in the repo root is the committed one).

use bench::fixpoint_suite;
use bench::harness::Group;
use bench::table;
use ebpf::asm::assemble;
use ebpf::Vm;
use verifier::VerificationSession;

fn main() {
    let mut group = Group::new("fixpoint_sweep");

    for (label, prog, session) in fixpoint_suite::sweep_configs() {
        group.bench(&label, || session.run(&prog).expect("sweep accepted"));
    }

    // Pure widening cost: no exit test at all, the head must climb the
    // whole threshold ladder to ⊤ before stabilizing.
    let unbounded = assemble(
        r"
            r1 = 0
        loop:
            r1 += 1
            if r2 > 0 goto loop
            r0 = 0
            exit
        ",
    )
    .expect("assembles");
    let session = VerificationSession::new();
    group.bench("analyze/unbounded_to_top", || {
        session.run(&unbounded).expect("terminates at ⊤")
    });

    // Concrete execution of the same loops, for an abstract-vs-concrete
    // scale reference.
    let mut vm = Vm::new();
    for &trips in &[16u32, 1024] {
        let prog = fixpoint_suite::masked_memset(trips);
        group.bench(&format!("vm/trips={trips}"), || {
            vm.run(&prog, &mut []).expect("runs")
        });
    }

    // One un-timed analysis per sweep configuration for the
    // copy-on-write and pruning statistics (deterministic, unlike the
    // timings).
    let stats = fixpoint_suite::collect_stats();

    // The batched-throughput family: the 64-program mixed batch at each
    // worker count, cold memo cache per configuration.
    let throughput = fixpoint_suite::throughput_rows();

    // The parallel-exploration family: branchy-tree and deep-unroll
    // workloads under the parshard strategy at each job count. Wall
    // clock and counters are scheduling-dependent, so they live in
    // their own baseline section (par_-prefixed keys).
    let parshard = fixpoint_suite::parshard_rows();

    if let Ok(path) = std::env::var("BENCH_JSON") {
        let doc = fixpoint_suite::to_json(
            "fixpoint_sweep",
            group.rows(),
            &stats,
            &throughput,
            &parshard,
        );
        std::fs::write(&path, doc).expect("write bench baseline");
        eprintln!("wrote baseline to {path}");
    }
    group.finish();

    println!("\n## parallel path exploration (parshard)\n");
    let parshard_table: Vec<Vec<String>> = parshard
        .iter()
        .map(|(label, ms, s)| {
            vec![
                label.clone(),
                format!("{ms:.1}"),
                s.visits.to_string(),
                s.subtrees_spawned.to_string(),
                s.steals.to_string(),
                s.shared_prunes.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "configuration",
                "wall ms",
                "visits",
                "subtrees",
                "steals",
                "shared prunes"
            ],
            &parshard_table
        )
    );

    println!("\n## batched throughput (64 mixed programs)\n");
    let throughput_table: Vec<Vec<String>> = throughput
        .iter()
        .map(|(label, s)| {
            vec![
                label.clone(),
                format!("{:.1}", s.programs_per_sec()),
                format!("{:.1}%", s.memo_hit_rate() * 100.0),
                s.memo_hits.to_string(),
                s.memo_misses.to_string(),
                s.memo_evicted.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "configuration",
                "programs/sec",
                "memo hit rate",
                "hits",
                "misses",
                "evicted"
            ],
            &throughput_table
        )
    );

    // Render the sharing and pruning counters alongside the timings.
    println!("\n## fixpoint_sweep state sharing and pruning\n");
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|(label, s)| {
            vec![
                label.clone(),
                s.states_allocated.to_string(),
                s.widenings_applied.to_string(),
                s.states_pruned.to_string(),
                s.subset_checks.to_string(),
                s.fingerprint_rejects.to_string(),
                s.visited_evicted.to_string(),
                s.bytes_materialized.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "configuration",
                "allocated",
                "widenings",
                "pruned",
                "subset checks",
                "fp rejects",
                "evicted",
                "bytes"
            ],
            &rows
        )
    );
}
