//! Benchmarks of the widening fixpoint engine over loopy programs: a
//! masked-memset loop swept across trip counts × widening delays, plus
//! an unbounded loop (pure widening cost) and the VM executing the same
//! loops for scale.
//!
//! Trip counts at or below the widening delay are analyzed with full
//! precision (one join per trip — analysis cost grows with the trip
//! count); above it, widening extrapolates and the cost flattens. That
//! trade-off is the whole point of the delay knob, and this sweep
//! measures it.
//!
//! Since PR 3 every sweep configuration also reports its
//! `AnalysisStats` — deep state copies vs. shared clones vs.
//! short-circuited joins under the copy-on-write state layer — which is
//! the regression surface `fixpoint_guard` checks in CI.
//!
//! Run with: `cargo bench -p bench --bench fixpoint`
//!
//! Set `BENCH_JSON=path.json` to also write the machine-readable
//! baseline (`BENCH_PR3.json` in the repo root is the committed one).

use bench::fixpoint_suite;
use bench::harness::Group;
use bench::table;
use ebpf::asm::assemble;
use ebpf::Vm;
use verifier::{Analyzer, AnalyzerOptions};

fn main() {
    let mut group = Group::new("fixpoint_sweep");

    for (label, prog, options) in fixpoint_suite::sweep_configs() {
        let analyzer = Analyzer::new(options);
        group.bench(&label, || {
            analyzer.analyze(&prog).expect("masked loop accepted")
        });
    }

    // Pure widening cost: no exit test at all, the head must climb the
    // whole threshold ladder to ⊤ before stabilizing.
    let unbounded = assemble(
        r"
            r1 = 0
        loop:
            r1 += 1
            if r2 > 0 goto loop
            r0 = 0
            exit
        ",
    )
    .expect("assembles");
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    group.bench("analyze/unbounded_to_top", || {
        analyzer.analyze(&unbounded).expect("terminates at ⊤")
    });

    // Concrete execution of the same loops, for an abstract-vs-concrete
    // scale reference.
    let mut vm = Vm::new();
    for &trips in &[16u32, 1024] {
        let prog = fixpoint_suite::masked_memset(trips);
        group.bench(&format!("vm/trips={trips}"), || {
            vm.run(&prog, &mut []).expect("runs")
        });
    }

    // One un-timed analysis per sweep configuration for the
    // copy-on-write statistics (deterministic, unlike the timings).
    let stats = fixpoint_suite::collect_stats();

    if let Ok(path) = std::env::var("BENCH_JSON") {
        let doc = fixpoint_suite::to_json("fixpoint_sweep", group.rows(), &stats);
        std::fs::write(&path, doc).expect("write bench baseline");
        eprintln!("wrote baseline to {path}");
    }
    group.finish();

    // Render the sharing counters alongside the timing table.
    println!("\n## fixpoint_sweep state sharing\n");
    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|(label, s)| {
            vec![
                label.clone(),
                s.states_allocated.to_string(),
                s.states_shared.to_string(),
                s.joins_short_circuited.to_string(),
                s.widenings_applied.to_string(),
                s.clone_everything_equivalent().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "configuration",
                "allocated",
                "shared",
                "short-circuited",
                "widenings",
                "clone-everything equiv."
            ],
            &rows
        )
    );
}
