//! Benchmarks of the widening fixpoint engine over loopy programs: a
//! masked-memset loop swept across trip counts × widening delays, plus
//! an unbounded loop (pure widening cost) and the VM executing the same
//! loops for scale.
//!
//! Trip counts at or below the widening delay are analyzed with full
//! precision (one join per trip — analysis cost grows with the trip
//! count); above it, widening extrapolates and the cost flattens. That
//! trade-off is the whole point of the delay knob, and this sweep
//! measures it.
//!
//! Run with: `cargo bench -p bench --bench fixpoint`
//!
//! Set `BENCH_JSON=path.json` to also write the machine-readable
//! baseline (`BENCH_PR2.json` in the repo root is the committed one).

use bench::harness::Group;
use ebpf::asm::assemble;
use ebpf::{Program, Vm};
use verifier::{Analyzer, AnalyzerOptions};

/// A memset-style loop over a 16-byte buffer with a masked index, safe
/// for every trip count; `trips` only changes how long the counter
/// climbs.
fn masked_memset(trips: u32) -> Program {
    assemble(&format!(
        r"
            r1 = 0
        loop:
            r2 = r1
            r2 &= 15
            r3 = r10
            r3 += -16
            r3 += r2
            *(u8 *)(r3 + 0) = 0
            r1 += 1
            if r1 < {trips} goto loop
            r0 = r1
            exit
        "
    ))
    .expect("assembles")
}

fn main() {
    let mut group = Group::new("fixpoint_sweep");

    // Trip counts straddling the default delay (16) × widening delays.
    for &trips in &[4u32, 8, 16, 64, 1024] {
        let prog = masked_memset(trips);
        for &delay in &[0u32, 4, 16, 64] {
            let analyzer = Analyzer::new(AnalyzerOptions {
                widen_delay: delay,
                ..AnalyzerOptions::default()
            });
            group.bench(&format!("analyze/trips={trips}/delay={delay}"), || {
                analyzer.analyze(&prog).expect("masked loop accepted")
            });
        }
    }

    // Pure widening cost: no exit test at all, the head must climb the
    // whole threshold ladder to ⊤ before stabilizing.
    let unbounded = assemble(
        r"
            r1 = 0
        loop:
            r1 += 1
            if r2 > 0 goto loop
            r0 = 0
            exit
        ",
    )
    .expect("assembles");
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    group.bench("analyze/unbounded_to_top", || {
        analyzer.analyze(&unbounded).expect("terminates at ⊤")
    });

    // Concrete execution of the same loops, for an abstract-vs-concrete
    // scale reference.
    let mut vm = Vm::new();
    for &trips in &[16u32, 1024] {
        let prog = masked_memset(trips);
        group.bench(&format!("vm/trips={trips}"), || {
            vm.run(&prog, &mut []).expect("runs")
        });
    }

    if let Ok(path) = std::env::var("BENCH_JSON") {
        std::fs::write(&path, group.to_json()).expect("write bench baseline");
        eprintln!("wrote baseline to {path}");
    }
    group.finish();
}
