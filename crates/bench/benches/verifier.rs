//! Benchmarks of the end-to-end substrate: assembling, verifying (with
//! and without branch refinement — an ablation from DESIGN.md), and
//! concretely executing representative programs.
//!
//! Run with: `cargo bench -p bench --bench verifier`

use bench::harness::Group;
use ebpf::asm::assemble;
use ebpf::{Program, Vm};
use verifier::{Analyzer, AnalyzerOptions};

fn sample_programs() -> Vec<(&'static str, Program)> {
    let masked_index = assemble(
        r"
            r2 = *(u8 *)(r1 + 0)
            r2 &= 7
            r3 = r10
            r3 += -16
            r3 += r2
            *(u8 *)(r3 + 0) = 1
            r0 = 0
            exit
        ",
    )
    .unwrap();
    let branchy = assemble(
        r"
            r2 = *(u8 *)(r1 + 0)
            if r2 > 31 goto out
            r3 = r1
            r3 += r2
            r0 = *(u8 *)(r3 + 0)
            r0 *= 3
            if r0 s> 64 goto out
            r0 += 1
            exit
        out:
            r0 = 0
            exit
        ",
    )
    .unwrap();
    let spill_heavy = assemble(
        r"
            r6 = 1
            r7 = 2
            *(u64 *)(r10 - 8) = r6
            *(u64 *)(r10 - 16) = r7
            *(u64 *)(r10 - 24) = r6
            *(u64 *)(r10 - 32) = r7
            r0 = *(u64 *)(r10 - 8)
            r1 = *(u64 *)(r10 - 16)
            r0 += r1
            r1 = *(u64 *)(r10 - 24)
            r0 += r1
            r1 = *(u64 *)(r10 - 32)
            r0 += r1
            exit
        ",
    )
    .unwrap();
    vec![
        ("masked_index", masked_index),
        ("branchy", branchy),
        ("spill_heavy", spill_heavy),
    ]
}

fn bench_analyze() {
    let programs = sample_programs();
    let mut group = Group::new("verifier_analyze");
    for (name, prog) in &programs {
        let refined = Analyzer::new(AnalyzerOptions::default());
        group.bench(&format!("refined/{name}"), || refined.analyze(prog).is_ok());
        let unrefined = Analyzer::new(AnalyzerOptions {
            refine_branches: false,
            ..AnalyzerOptions::default()
        });
        group.bench(&format!("unrefined/{name}"), || {
            unrefined.analyze(prog).is_ok()
        });
    }
    group.finish();
}

fn bench_vm() {
    let programs = sample_programs();
    let mut group = Group::new("vm_execute");
    for (name, prog) in &programs {
        let mut vm = Vm::new();
        let mut ctx = [7u8; 64];
        group.bench(name, || vm.run(prog, &mut ctx).unwrap());
    }
    group.finish();
}

fn bench_assemble() {
    let source = sample_programs()
        .into_iter()
        .map(|(_, p)| p.disassemble())
        .collect::<Vec<_>>()
        .join("");
    let mut group = Group::new("assemble");
    group.bench("assemble_30_insns", || assemble(&source).unwrap());
    group.finish();
}

fn main() {
    bench_analyze();
    bench_vm();
    bench_assemble();
}
