//! Criterion benchmarks of the end-to-end substrate: assembling,
//! verifying (with and without branch refinement — an ablation from
//! DESIGN.md), and concretely executing representative programs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ebpf::asm::assemble;
use ebpf::{Program, Vm};
use verifier::{Analyzer, AnalyzerOptions};

fn sample_programs() -> Vec<(&'static str, Program)> {
    let masked_index = assemble(
        r"
            r2 = *(u8 *)(r1 + 0)
            r2 &= 7
            r3 = r10
            r3 += -16
            r3 += r2
            *(u8 *)(r3 + 0) = 1
            r0 = 0
            exit
        ",
    )
    .unwrap();
    let branchy = assemble(
        r"
            r2 = *(u8 *)(r1 + 0)
            if r2 > 31 goto out
            r3 = r1
            r3 += r2
            r0 = *(u8 *)(r3 + 0)
            r0 *= 3
            if r0 s> 64 goto out
            r0 += 1
            exit
        out:
            r0 = 0
            exit
        ",
    )
    .unwrap();
    let spill_heavy = assemble(
        r"
            r6 = 1
            r7 = 2
            *(u64 *)(r10 - 8) = r6
            *(u64 *)(r10 - 16) = r7
            *(u64 *)(r10 - 24) = r6
            *(u64 *)(r10 - 32) = r7
            r0 = *(u64 *)(r10 - 8)
            r1 = *(u64 *)(r10 - 16)
            r0 += r1
            r1 = *(u64 *)(r10 - 24)
            r0 += r1
            r1 = *(u64 *)(r10 - 32)
            r0 += r1
            exit
        ",
    )
    .unwrap();
    vec![("masked_index", masked_index), ("branchy", branchy), ("spill_heavy", spill_heavy)]
}

fn bench_analyze(c: &mut Criterion) {
    let programs = sample_programs();
    let mut group = c.benchmark_group("verifier_analyze");
    for (name, prog) in &programs {
        group.bench_with_input(BenchmarkId::new("refined", name), prog, |b, prog| {
            let analyzer = Analyzer::new(AnalyzerOptions::default());
            b.iter(|| analyzer.analyze(prog).is_ok())
        });
        group.bench_with_input(BenchmarkId::new("unrefined", name), prog, |b, prog| {
            let analyzer = Analyzer::new(AnalyzerOptions {
                refine_branches: false,
                ..AnalyzerOptions::default()
            });
            b.iter(|| analyzer.analyze(prog).is_ok())
        });
    }
    group.finish();
}

fn bench_vm(c: &mut Criterion) {
    let programs = sample_programs();
    let mut group = c.benchmark_group("vm_execute");
    for (name, prog) in &programs {
        group.bench_with_input(BenchmarkId::from_parameter(name), prog, |b, prog| {
            let mut vm = Vm::new();
            let mut ctx = [7u8; 64];
            b.iter(|| vm.run(prog, &mut ctx).unwrap())
        });
    }
    group.finish();
}

fn bench_assemble(c: &mut Criterion) {
    let source = sample_programs()
        .into_iter()
        .map(|(_, p)| p.disassemble())
        .collect::<Vec<_>>()
        .join("");
    c.bench_function("assemble_30_insns", |b| b.iter(|| assemble(&source).unwrap()));
}

criterion_group! {
    name = benches;
    // Short windows keep the full-workspace bench run tractable on a
    // small container; raise for publication-quality statistics.
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_analyze, bench_vm, bench_assemble
}
criterion_main!(benches);
