//! **Figure 5** (§IV-B): cumulative distribution of the minimum number of
//! CPU cycles taken by `bitwise_mul`, `kern_mul`, and `our_mul` over
//! randomly sampled 64-bit tnum pairs.
//!
//! Methodology matches the paper: each input pair is run `--trials` times
//! (default 10) per algorithm and the minimum cycle count (RDTSC) is
//! recorded; the binary prints per-algorithm means and a CDF at selected
//! percentiles. The paper used 40M pairs on a 20-core Skylake; the
//! default here is 200k pairs to fit a small container — pass
//! `--pairs 40000000` to reproduce the full workload.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin fig5_mul_performance \
//!     [--pairs 200000] [--trials 10] [--seed 1] [--naive]
//! ```
//!
//! `--naive` additionally measures the unoptimized trit-at-a-time
//! `bitwise_mul` (the ~4921-cycle version of §IV-B) — experiment E7.

use bench::cli::Args;
use bench::cycles::min_cycles;
use bench::table::render;
use bitwise_domain::{bitwise_mul, bitwise_mul_naive};
use domain::rng::SplitMix64;
use domain::AbstractDomain;
use tnum::Tnum;

struct Algo {
    name: &'static str,
    f: fn(Tnum, Tnum) -> Tnum,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args = Args::parse();
    let pairs = args.get_u64("pairs", 200_000);
    let trials = args.get_u64("trials", 10) as u32;
    let seed = args.get_u64("seed", 1);

    let mut algos: Vec<Algo> = vec![
        Algo {
            name: "bitwise_mul",
            f: bitwise_mul,
        },
        Algo {
            name: "kern_mul",
            f: |a, b| a.mul_kernel_legacy(b),
        },
        Algo {
            name: "our_mul",
            f: |a, b| a.mul(b),
        },
    ];
    if args.has("naive") {
        algos.push(Algo {
            name: "bitwise_mul_naive",
            f: bitwise_mul_naive,
        });
    }

    println!(
        "Figure 5: min-of-{trials} RDTSC cycles per multiplication over {pairs} random \
         64-bit tnum pairs\n"
    );

    let mut rng = SplitMix64::new(seed);
    let inputs: Vec<(Tnum, Tnum)> = (0..pairs)
        .map(|_| (Tnum::random(&mut rng), Tnum::random(&mut rng)))
        .collect();

    let mut rows = Vec::new();
    for algo in &algos {
        let mut samples: Vec<u64> = Vec::with_capacity(inputs.len());
        for &(p, q) in &inputs {
            samples.push(min_cycles(trials, || (algo.f)(p, q)));
        }
        samples.sort_unstable();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        rows.push(vec![
            algo.name.to_string(),
            format!("{mean:.0}"),
            percentile(&samples, 0.10).to_string(),
            percentile(&samples, 0.50).to_string(),
            percentile(&samples, 0.90).to_string(),
            percentile(&samples, 0.99).to_string(),
        ]);
        eprintln!("{} done", algo.name);
    }

    println!(
        "{}",
        render(&["algorithm", "mean", "p10", "p50", "p90", "p99"], &rows)
    );
    println!("Paper reference (means on 2.2 GHz Skylake): kern_mul ~393, optimized");
    println!("bitwise_mul ~387, our_mul ~262 cycles (our_mul ~33%/32% faster); the");
    println!("naive bitwise_mul ~4921 cycles. Expect the same ordering and rough");
    println!("ratios here; absolute counts differ with the CPU.");
}
