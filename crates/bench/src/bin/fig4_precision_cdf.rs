//! **Figure 4** (§IV-A): cumulative distribution of the ratio of
//! concretized set sizes produced by (a) `kern_mul` vs `our_mul` and
//! (b) `bitwise_mul` vs `our_mul`, over all width-8 tnum pairs where the
//! outputs differ, in log₂ scale.
//!
//! Because `|γ(t)| = 2^popcount(mask)`, the log₂ ratio is exactly the
//! integer difference in unknown-trit counts; a tick at `+k` means
//! `our_mul` was more precise by `k` trits.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin fig4_precision_cdf [--width 8]
//! ```

use bench::cli::Args;
use bench::table::render;
use tnum::Tnum;
use tnum_verify::ops::{Op2, OpCatalog};
use tnum_verify::ratio_histogram;

fn cdf_rows(name: &str, hist: &std::collections::BTreeMap<i32, u64>) -> Vec<Vec<String>> {
    let total: u64 = hist.values().sum();
    let mut cum = 0u64;
    hist.iter()
        .map(|(k, v)| {
            cum += v;
            vec![
                name.to_string(),
                format!("{k:+}"),
                v.to_string(),
                format!("{:.2}%", cum as f64 / total as f64 * 100.0),
            ]
        })
        .collect()
}

fn run(name: &str, a: Op2<Tnum>, b: Op2<Tnum>, width: u32) -> Vec<Vec<String>> {
    let hist = ratio_histogram(a, b, width);
    let total: u64 = hist.values().sum();
    let precise: u64 = hist.iter().filter(|(k, _)| **k > 0).map(|(_, v)| *v).sum();
    println!(
        "{name}: {total} differing pairs; our_mul more precise in {precise} \
         ({:.1}% — paper: ~80%)",
        precise as f64 / total.max(1) as f64 * 100.0
    );
    cdf_rows(name, &hist)
}

fn main() {
    let args = Args::parse();
    let width = args.get_u64("width", 8) as u32;
    assert!((2..=10).contains(&width), "--width must be in 2..=10");

    println!("Figure 4: CDF of log2 set-size ratio vs our_mul at width {width}\n");
    let mut rows = run(
        "kern_mul/our_mul",
        OpCatalog::<Tnum>::mul_kernel(),
        OpCatalog::<Tnum>::mul(),
        width,
    );
    rows.extend(run(
        "bitwise_mul/our_mul",
        OpCatalog::<Tnum>::mul_bitwise(),
        OpCatalog::<Tnum>::mul(),
        width,
    ));
    println!();
    println!(
        "{}",
        render(&["comparison", "log2 ratio", "count", "cumulative"], &rows)
    );
    println!("Ticks right of 0 are inputs where our_mul's output is smaller (more precise).");
}
