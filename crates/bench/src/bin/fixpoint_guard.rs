//! `fixpoint_guard` — the CI smoke check for the exploration engines:
//! re-runs the strategy sweep (`bench::fixpoint_suite`), compares the
//! totals against the committed `BENCH_PR5.json` baseline, and fails
//! when any of three deterministic counters regresses by more than 20%:
//!
//! * **`states_allocated`** (absolute total): a refactor that quietly
//!   re-introduces clone-everything state propagation fails CI;
//! * **pruned-state ratio** (`states_pruned / subset_checks`,
//!   relative): a change that makes the path-sensitive visited table
//!   stop covering arrivals — more probes buying fewer prunes — fails
//!   CI even if it stays sound;
//! * **`subset_checks` at the deep-unroll point**
//!   (`path/trips=1024/unroll=64`, absolute): the quadratic
//!   chain-scan growth the fingerprint-indexed table eliminated; a
//!   change that reopens it (losing the fingerprint gate, the chain
//!   cap, or dominance eviction) fails CI long before the wall-clock
//!   noise would show it.
//!
//! The counters are deterministic (unlike the timings), so this is a
//! stable gate even on noisy runners.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin fixpoint_guard -- [--baseline BENCH_PR5.json]
//! ```
//!
//! Exit status: 0 when within budget, 1 on regression or a missing/old
//! baseline.

use std::process::ExitCode;

use bench::cli::Args;
use bench::fixpoint_suite;
use bench::table;

/// Allowed regression over the committed baseline, in percent — applied
/// to the allocation total, the pruned-state ratio, and the deep-unroll
/// `subset_checks` count alike.
const TOLERANCE_PERCENT: u64 = 20;

/// The sweep label whose `subset_checks` count the deep-unroll gate
/// regresses on: the configuration where visited-chain scans used to
/// grow quadratically (2.7k probes before the fingerprint-indexed
/// table).
const DEEP_UNROLL_LABEL: &str = "path/trips=1024/unroll=64";

fn main() -> ExitCode {
    let args = Args::parse();
    let path = args
        .get_str("baseline")
        .unwrap_or("BENCH_PR5.json")
        .to_string();

    let stats = fixpoint_suite::collect_stats();
    let current: u64 = stats.iter().map(|(_, s)| s.states_allocated).sum();
    let shared: u64 = stats.iter().map(|(_, s)| s.states_shared).sum();
    let clone_everything: u64 = stats
        .iter()
        .map(|(_, s)| s.clone_everything_equivalent())
        .sum();
    let pruned: u64 = stats.iter().map(|(_, s)| s.states_pruned).sum();
    let checks: u64 = stats.iter().map(|(_, s)| s.subset_checks).sum();
    let fp_rejects: u64 = stats.iter().map(|(_, s)| s.fingerprint_rejects).sum();
    let evicted: u64 = stats.iter().map(|(_, s)| s.visited_evicted).sum();
    let deep_checks = stats
        .iter()
        .find(|(label, _)| label == DEEP_UNROLL_LABEL)
        .map(|(_, s)| s.subset_checks);

    let rows = vec![
        vec!["states allocated (deep)".to_string(), current.to_string()],
        vec![
            "states shared (O(1) clones)".to_string(),
            shared.to_string(),
        ],
        vec![
            "clone-everything equivalent".to_string(),
            clone_everything.to_string(),
        ],
        vec!["states pruned (visited)".to_string(), pruned.to_string()],
        vec!["subset checks".to_string(), checks.to_string()],
        vec!["fingerprint rejects".to_string(), fp_rejects.to_string()],
        vec!["visited evicted".to_string(), evicted.to_string()],
    ];
    println!(
        "{}",
        table::render(&["strategy sweep total", "count"], &rows)
    );

    let doc = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("fixpoint_guard: cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(baseline) = fixpoint_suite::total_allocated_in_json(&doc) else {
        eprintln!("fixpoint_guard: {path} carries no states_allocated stats");
        return ExitCode::FAILURE;
    };
    let (Some(base_pruned), Some(base_checks)) = (
        fixpoint_suite::total_field_in_json(&doc, "states_pruned"),
        fixpoint_suite::total_field_in_json(&doc, "subset_checks"),
    ) else {
        eprintln!("fixpoint_guard: {path} carries no pruning stats");
        return ExitCode::FAILURE;
    };

    let budget = baseline + baseline * TOLERANCE_PERCENT / 100;
    println!(
        "baseline {baseline} deep copies, budget {budget} (+{TOLERANCE_PERCENT}%), current {current}"
    );
    if current > budget {
        eprintln!(
            "fixpoint_guard: states_allocated regressed: {current} > {budget} \
             (baseline {baseline} + {TOLERANCE_PERCENT}%)"
        );
        return ExitCode::FAILURE;
    }

    // Pruned-state ratio, compared cross-multiplied to stay in integers:
    // fail when  pruned/checks  <  (base_pruned/base_checks) · (1 - tol).
    println!(
        "baseline pruning {base_pruned}/{base_checks} probes, current {pruned}/{checks} \
         (tolerance -{TOLERANCE_PERCENT}% relative)"
    );
    if base_pruned > 0
        && (checks == 0
            || pruned * base_checks * 100 < base_pruned * checks * (100 - TOLERANCE_PERCENT))
    {
        eprintln!(
            "fixpoint_guard: pruned-state ratio regressed: {pruned}/{checks} is more than \
             {TOLERANCE_PERCENT}% below the baseline {base_pruned}/{base_checks}"
        );
        return ExitCode::FAILURE;
    }

    // Deep-unroll subset_checks gate: the quadratic chain-scan
    // regression surface.
    let Some(base_deep) =
        fixpoint_suite::label_field_in_json(&doc, DEEP_UNROLL_LABEL, "subset_checks")
    else {
        eprintln!("fixpoint_guard: {path} carries no {DEEP_UNROLL_LABEL} subset_checks");
        return ExitCode::FAILURE;
    };
    let Some(deep_checks) = deep_checks else {
        eprintln!("fixpoint_guard: sweep no longer contains {DEEP_UNROLL_LABEL}");
        return ExitCode::FAILURE;
    };
    let deep_budget = base_deep + base_deep * TOLERANCE_PERCENT / 100;
    println!(
        "baseline {DEEP_UNROLL_LABEL} subset_checks {base_deep}, budget {deep_budget} \
         (+{TOLERANCE_PERCENT}%), current {deep_checks}"
    );
    if deep_checks > deep_budget {
        eprintln!(
            "fixpoint_guard: deep-unroll subset_checks regressed: {deep_checks} > {deep_budget} \
             (baseline {base_deep} + {TOLERANCE_PERCENT}%) — the visited table is scanning \
             chains it should fingerprint-reject, cap, or evict"
        );
        return ExitCode::FAILURE;
    }
    println!("fixpoint_guard: OK");
    ExitCode::SUCCESS
}
