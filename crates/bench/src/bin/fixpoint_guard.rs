//! `fixpoint_guard` — the CI smoke check for the exploration engines:
//! re-runs the strategy sweep (`bench::fixpoint_suite`), compares the
//! totals against the committed `BENCH_PR10.json` baseline, and fails
//! when any of the gated quantities regresses by more than 20%:
//!
//! * **`states_allocated`** (absolute total): a refactor that quietly
//!   re-introduces clone-everything state propagation fails CI;
//! * **pruned-state ratio** (`states_pruned / subset_checks`,
//!   relative): a change that makes the path-sensitive visited table
//!   stop covering arrivals — more probes buying fewer prunes — fails
//!   CI even if it stays sound;
//! * **`subset_checks` at the deep-unroll point**
//!   (`path/trips=1024/unroll=64`, absolute): the quadratic
//!   chain-scan growth the fingerprint-indexed table eliminated; a
//!   change that reopens it (losing the fingerprint gate, the chain
//!   cap, or dominance eviction) fails CI long before the wall-clock
//!   noise would show it;
//! * **masked `subset_checks`** (absolute, vs the baseline's
//!   `masking=off` ablation row): with liveness masking ON, the
//!   deep-unroll point must spend at least
//!   [`MASKED_GATE_PERCENT`]% fewer deep subset checks than the
//!   unmasked twin recorded in the baseline — a change that quietly
//!   defeats checkpoint cleaning or the strict-budget-0 masked probe
//!   (so masked states stop fingerprinting equally) fails CI;
//! * **`memo_hits`** (absolute total): the transfer-memo counters the
//!   sweep reports deterministically — a change that silently disables
//!   or misses the cache fails CI;
//! * **`maps/` family `subset_checks`** (absolute total over the
//!   family's rows): helper transfers are never memoized, so the
//!   map-helper workloads pay full per-visit cost — a change that makes
//!   the visited table stop covering the update loop's back edge (or
//!   starts re-exploring the NULL-check split) shows up here first;
//! * **`maps/` family wall clock** (best of three per row, summed,
//!   vs the baseline's `ns_per_iter` timings): a deliberately generous
//!   [`MAPS_WALL_TOLERANCE_PERCENT`]% budget — timings are noisy across
//!   runner classes, and the deterministic subset-check gate above is
//!   the precise instrument; this one only catches a helper-path
//!   verification cost blow-up too large for noise to explain;
//! * **batched `programs_per_sec` at jobs=4** (wall-clock, best of
//!   three runs of the 64-program mixed batch): a timing-based gate,
//!   guarding the batch engine's throughput against a >20%
//!   regression on the same runner class that produced the baseline;
//! * **parallel path exploration at jobs=4** (wall-clock, best of
//!   three, measured live — no baseline involved): on a multi-core
//!   runner the parshard strategy must verify the branchy-tree
//!   workload at least [`PARSHARD_GATE_PERCENT`]% faster with four
//!   jobs than with one. On a single-core runner the gate is skipped
//!   with a logged notice — there is no parallelism to buy the saving
//!   with, and the determinism contract (identical verdicts at every
//!   job count) is what the test suite checks instead;
//! * **governance overhead on the batched throughput** (wall-clock,
//!   measured live — governed best-of-five vs the ungoverned rate just
//!   measured): arming a generous per-program deadline (the full
//!   per-visit governance stack: deadline check, fail-point gate,
//!   visit ledger) must cost at most
//!   [`GOVERNANCE_TOLERANCE_PERCENT`]% of the ungoverned
//!   programs/sec — fault tolerance that taxes the hot path fails CI.
//!
//! The counter gates are deterministic (unlike the timings), so they
//! are stable even on noisy runners; the wall-clock gates take the best
//! of three runs to shave scheduler noise.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin fixpoint_guard -- [--baseline BENCH_PR10.json]
//! ```
//!
//! Exit status: 0 when within budget, 1 on regression or a missing/old
//! baseline.

use std::process::ExitCode;

use bench::cli::Args;
use bench::fixpoint_suite;
use bench::table;
use verifier::VerificationSession;

/// Allowed regression over the committed baseline, in percent — applied
/// to the allocation total, the pruned-state ratio, and the deep-unroll
/// `subset_checks` count alike.
const TOLERANCE_PERCENT: u64 = 20;

/// The sweep label whose `subset_checks` count the deep-unroll gate
/// regresses on: the configuration where visited-chain scans used to
/// grow quadratically (2.7k probes before the fingerprint-indexed
/// table).
const DEEP_UNROLL_LABEL: &str = "path/trips=1024/unroll=64";

/// The deep-unroll configuration's unmasked ablation twin
/// (`liveness_pruning` off) — the row the masked-pruning gate compares
/// [`DEEP_UNROLL_LABEL`] against.
const MASKING_OFF_LABEL: &str = "path/trips=1024/unroll=64/masking=off";

/// Minimum saving the liveness-masked probe path must keep delivering
/// at the deep-unroll point, in percent of the unmasked twin's
/// `subset_checks` — the PR 7 acceptance bar.
const MASKED_GATE_PERCENT: u64 = 25;

/// The throughput configuration the wall-clock gate replays: the
/// 64-program mixed batch on four workers.
const THROUGHPUT_GATE_JOBS: usize = 4;

/// Maximum throughput the resource-governance machinery — per-visit
/// deadline checks, the disarmed fail-point gate, and the visit ledger
/// — may cost on the `throughput/` batch, in percent of the ungoverned
/// rate measured in the same process moments earlier. Governance is
/// designed to be a relaxed load and an `Option` test per visit;
/// anything above noise here means a hot-path regression.
const GOVERNANCE_TOLERANCE_PERCENT: u64 = 5;

/// Minimum wall-clock saving parallel path exploration must deliver on
/// the branchy-tree workload at jobs=[`PARSHARD_GATE_JOBS`] vs jobs=1,
/// in percent — measured live, multi-core runners only.
const PARSHARD_GATE_PERCENT: u64 = 25;

/// Job count of the parallel-exploration wall-clock gate.
const PARSHARD_GATE_JOBS: usize = 4;

/// Allowed wall-clock regression of the `maps/` family over the
/// baseline's `ns_per_iter` timings, in percent — deliberately generous
/// (the deterministic subset-check gate is the precise instrument;
/// this one only catches a blow-up noise cannot explain).
const MAPS_WALL_TOLERANCE_PERCENT: u64 = 150;

fn main() -> ExitCode {
    let args = Args::parse();
    let path = args
        .get_str("baseline")
        .unwrap_or("BENCH_PR10.json")
        .to_string();

    let stats = fixpoint_suite::collect_stats();
    let current: u64 = stats.iter().map(|(_, s)| s.states_allocated).sum();
    let shared: u64 = stats.iter().map(|(_, s)| s.states_shared).sum();
    let clone_everything: u64 = stats
        .iter()
        .map(|(_, s)| s.clone_everything_equivalent())
        .sum();
    let pruned: u64 = stats.iter().map(|(_, s)| s.states_pruned).sum();
    let checks: u64 = stats.iter().map(|(_, s)| s.subset_checks).sum();
    let fp_rejects: u64 = stats.iter().map(|(_, s)| s.fingerprint_rejects).sum();
    let evicted: u64 = stats.iter().map(|(_, s)| s.visited_evicted).sum();
    let memo_hits: u64 = stats.iter().map(|(_, s)| s.memo_hits).sum();
    let memo_misses: u64 = stats.iter().map(|(_, s)| s.memo_misses).sum();
    let deep_checks = stats
        .iter()
        .find(|(label, _)| label == DEEP_UNROLL_LABEL)
        .map(|(_, s)| s.subset_checks);

    let rows = vec![
        vec!["states allocated (deep)".to_string(), current.to_string()],
        vec![
            "states shared (O(1) clones)".to_string(),
            shared.to_string(),
        ],
        vec![
            "clone-everything equivalent".to_string(),
            clone_everything.to_string(),
        ],
        vec!["states pruned (visited)".to_string(), pruned.to_string()],
        vec!["subset checks".to_string(), checks.to_string()],
        vec!["fingerprint rejects".to_string(), fp_rejects.to_string()],
        vec!["visited evicted".to_string(), evicted.to_string()],
        vec!["memo hits".to_string(), memo_hits.to_string()],
        vec!["memo misses".to_string(), memo_misses.to_string()],
    ];
    println!(
        "{}",
        table::render(&["strategy sweep total", "count"], &rows)
    );

    let doc = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("fixpoint_guard: cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(baseline) = fixpoint_suite::total_allocated_in_json(&doc) else {
        eprintln!("fixpoint_guard: {path} carries no states_allocated stats");
        return ExitCode::FAILURE;
    };
    let (Some(base_pruned), Some(base_checks)) = (
        fixpoint_suite::total_field_in_json(&doc, "states_pruned"),
        fixpoint_suite::total_field_in_json(&doc, "subset_checks"),
    ) else {
        eprintln!("fixpoint_guard: {path} carries no pruning stats");
        return ExitCode::FAILURE;
    };

    let budget = baseline + baseline * TOLERANCE_PERCENT / 100;
    println!(
        "baseline {baseline} deep copies, budget {budget} (+{TOLERANCE_PERCENT}%), current {current}"
    );
    if current > budget {
        eprintln!(
            "fixpoint_guard: states_allocated regressed: {current} > {budget} \
             (baseline {baseline} + {TOLERANCE_PERCENT}%)"
        );
        return ExitCode::FAILURE;
    }

    // Pruned-state ratio, compared cross-multiplied to stay in integers:
    // fail when  pruned/checks  <  (base_pruned/base_checks) · (1 - tol).
    println!(
        "baseline pruning {base_pruned}/{base_checks} probes, current {pruned}/{checks} \
         (tolerance -{TOLERANCE_PERCENT}% relative)"
    );
    if base_pruned > 0
        && (checks == 0
            || pruned * base_checks * 100 < base_pruned * checks * (100 - TOLERANCE_PERCENT))
    {
        eprintln!(
            "fixpoint_guard: pruned-state ratio regressed: {pruned}/{checks} is more than \
             {TOLERANCE_PERCENT}% below the baseline {base_pruned}/{base_checks}"
        );
        return ExitCode::FAILURE;
    }

    // Deep-unroll subset_checks gate: the quadratic chain-scan
    // regression surface.
    let Some(base_deep) =
        fixpoint_suite::label_field_in_json(&doc, DEEP_UNROLL_LABEL, "subset_checks")
    else {
        eprintln!("fixpoint_guard: {path} carries no {DEEP_UNROLL_LABEL} subset_checks");
        return ExitCode::FAILURE;
    };
    let Some(deep_checks) = deep_checks else {
        eprintln!("fixpoint_guard: sweep no longer contains {DEEP_UNROLL_LABEL}");
        return ExitCode::FAILURE;
    };
    let deep_budget = base_deep + base_deep * TOLERANCE_PERCENT / 100;
    println!(
        "baseline {DEEP_UNROLL_LABEL} subset_checks {base_deep}, budget {deep_budget} \
         (+{TOLERANCE_PERCENT}%), current {deep_checks}"
    );
    if deep_checks > deep_budget {
        eprintln!(
            "fixpoint_guard: deep-unroll subset_checks regressed: {deep_checks} > {deep_budget} \
             (baseline {base_deep} + {TOLERANCE_PERCENT}%) — the visited table is scanning \
             chains it should fingerprint-reject, cap, or evict"
        );
        return ExitCode::FAILURE;
    }

    // Masked-pruning gate: the liveness-masked deep-unroll row must
    // keep spending at least MASKED_GATE_PERCENT% fewer subset checks
    // than the unmasked ablation twin recorded in the baseline.
    let Some(base_unmasked) =
        fixpoint_suite::label_field_in_json(&doc, MASKING_OFF_LABEL, "subset_checks")
    else {
        eprintln!("fixpoint_guard: {path} carries no {MASKING_OFF_LABEL} subset_checks");
        return ExitCode::FAILURE;
    };
    let masked_ceiling = base_unmasked * (100 - MASKED_GATE_PERCENT) / 100;
    println!(
        "baseline {MASKING_OFF_LABEL} subset_checks {base_unmasked}, masked ceiling \
         {masked_ceiling} (-{MASKED_GATE_PERCENT}%), current masked {deep_checks}"
    );
    if deep_checks > masked_ceiling {
        eprintln!(
            "fixpoint_guard: liveness masking stopped paying for itself: the masked \
             deep-unroll row spends {deep_checks} subset checks, more than \
             {masked_ceiling} ({MASKED_GATE_PERCENT}% below the unmasked baseline \
             {base_unmasked}) — checkpoint cleaning or the masked probe path regressed"
        );
        return ExitCode::FAILURE;
    }

    // Memo-hit gate: a change that silently disables the transfer memo
    // (or makes its keys stop matching) drops the deterministic
    // per-sweep hit total.
    let Some(base_hits) = fixpoint_suite::total_field_in_json(&doc, "memo_hits") else {
        eprintln!("fixpoint_guard: {path} carries no memo_hits stats");
        return ExitCode::FAILURE;
    };
    println!(
        "baseline memo {base_hits} hits, current {memo_hits}/{} lookups \
         (tolerance -{TOLERANCE_PERCENT}%)",
        memo_hits + memo_misses
    );
    if memo_hits * 100 < base_hits * (100 - TOLERANCE_PERCENT) {
        eprintln!(
            "fixpoint_guard: memo hits regressed: {memo_hits} is more than \
             {TOLERANCE_PERCENT}% below the baseline {base_hits} — the transfer \
             memo stopped serving lookups it used to"
        );
        return ExitCode::FAILURE;
    }

    // Map-helper family gates. Counters first: helper transfers are
    // never memoized, so the maps rows' subset_checks are the
    // deterministic cost signature of the helper verification path —
    // registry check, NULL-refinement split, map-value bounds proofs.
    let maps = fixpoint_suite::maps_configs();
    let maps_checks: u64 = maps
        .iter()
        .map(|(label, _, _)| {
            stats
                .iter()
                .find(|(l, _)| l == label)
                .map_or(0, |(_, s)| s.subset_checks)
        })
        .sum();
    let mut base_maps_checks = 0u64;
    for (label, _, _) in &maps {
        let Some(n) = fixpoint_suite::label_field_in_json(&doc, label, "subset_checks") else {
            eprintln!("fixpoint_guard: {path} carries no {label} subset_checks");
            return ExitCode::FAILURE;
        };
        base_maps_checks += n;
    }
    let maps_budget = base_maps_checks + base_maps_checks * TOLERANCE_PERCENT / 100;
    println!(
        "baseline maps/ subset_checks {base_maps_checks}, budget {maps_budget} \
         (+{TOLERANCE_PERCENT}%), current {maps_checks}"
    );
    if maps_checks > maps_budget {
        eprintln!(
            "fixpoint_guard: maps/ subset_checks regressed: {maps_checks} > {maps_budget} \
             (baseline {base_maps_checks} + {TOLERANCE_PERCENT}%) — the helper verification \
             path is re-exploring states the visited table used to cover"
        );
        return ExitCode::FAILURE;
    }

    // Maps wall clock: best of three per row, summed, against the
    // baseline's ns_per_iter timings under a generous budget.
    let mut maps_ns = 0.0f64;
    let mut base_maps_ns = 0.0f64;
    for (label, prog, session) in &maps {
        let Some(base) = fixpoint_suite::label_float_in_json(&doc, label, "ns_per_iter") else {
            eprintln!("fixpoint_guard: {path} carries no {label} ns_per_iter");
            return ExitCode::FAILURE;
        };
        base_maps_ns += base;
        maps_ns += (0..3)
            .map(|_| {
                let start = std::time::Instant::now();
                session.run(prog).expect("maps program stays safe");
                start.elapsed().as_nanos() as f64
            })
            .fold(f64::INFINITY, f64::min);
    }
    let maps_ns_budget = base_maps_ns
        * f64::from(100 + u32::try_from(MAPS_WALL_TOLERANCE_PERCENT).expect("small"))
        / 100.0;
    println!(
        "baseline maps/ wall {:.1} µs, budget {:.1} µs (+{MAPS_WALL_TOLERANCE_PERCENT}%), \
         current {:.1} µs (best of 3 per row)",
        base_maps_ns / 1e3,
        maps_ns_budget / 1e3,
        maps_ns / 1e3
    );
    if maps_ns > maps_ns_budget {
        eprintln!(
            "fixpoint_guard: maps/ wall clock regressed: {:.1} µs is more than \
             {MAPS_WALL_TOLERANCE_PERCENT}% over the baseline {:.1} µs — helper-call \
             verification cost blew up beyond what runner noise explains",
            maps_ns / 1e3,
            base_maps_ns / 1e3
        );
        return ExitCode::FAILURE;
    }

    // Batched-throughput gate: replay the 64-program mixed batch at
    // jobs=4, best of three, against the baseline rate.
    let gate_label = fixpoint_suite::throughput_label(THROUGHPUT_GATE_JOBS);
    let Some(base_rate) =
        fixpoint_suite::label_float_in_json(&doc, &gate_label, "programs_per_sec")
    else {
        eprintln!("fixpoint_guard: {path} carries no {gate_label} programs_per_sec");
        return ExitCode::FAILURE;
    };
    let batch = fixpoint_suite::throughput_batch();
    let rate = (0..3)
        .map(|_| {
            let report = VerificationSession::new().run_batch(&batch, THROUGHPUT_GATE_JOBS);
            assert_eq!(report.stats.rejected, 0, "throughput batch stays safe");
            report.stats.programs_per_sec()
        })
        .fold(0.0f64, f64::max);
    let floor =
        base_rate * f64::from(100 - u32::try_from(TOLERANCE_PERCENT).expect("small")) / 100.0;
    println!(
        "baseline {gate_label} {base_rate:.1} programs/sec, floor {floor:.1} \
         (-{TOLERANCE_PERCENT}%), current {rate:.1} (best of 3)"
    );
    if rate < floor {
        eprintln!(
            "fixpoint_guard: batched throughput regressed: {rate:.1} programs/sec is more \
             than {TOLERANCE_PERCENT}% below the baseline {base_rate:.1} at jobs={THROUGHPUT_GATE_JOBS}"
        );
        return ExitCode::FAILURE;
    }

    // Governance-overhead gate: replay the same batch with the full
    // governance stack armed — a generous per-program deadline (so the
    // cooperative check runs on every visit but never fires) on top of
    // the always-compiled fail-point gate and visit ledger — and
    // require the rate to stay within GOVERNANCE_TOLERANCE_PERCENT% of
    // the ungoverned rate just measured on this same runner. Best of
    // five runs to shave scheduler noise under the tight budget.
    let governed_session = VerificationSession::new().with_options(verifier::AnalyzerOptions {
        deadline: Some(std::time::Duration::from_secs(30)),
        ..verifier::AnalyzerOptions::default()
    });
    let governed = (0..5)
        .map(|_| {
            let report = governed_session.run_batch(&batch, THROUGHPUT_GATE_JOBS);
            assert_eq!(report.stats.rejected, 0, "governed batch stays safe");
            assert_eq!(
                report.stats.deadline_exceeded, 0,
                "30 s deadline never fires"
            );
            report.stats.programs_per_sec()
        })
        .fold(0.0f64, f64::max);
    let governed_floor =
        rate * f64::from(100 - u32::try_from(GOVERNANCE_TOLERANCE_PERCENT).expect("small")) / 100.0;
    println!(
        "ungoverned {gate_label} {rate:.1} programs/sec, governed floor {governed_floor:.1} \
         (-{GOVERNANCE_TOLERANCE_PERCENT}%), current governed {governed:.1} (best of 5)"
    );
    if governed < governed_floor {
        eprintln!(
            "fixpoint_guard: resource governance stopped being free: {governed:.1} \
             programs/sec with a generous deadline armed is more than \
             {GOVERNANCE_TOLERANCE_PERCENT}% below the ungoverned {rate:.1} — the per-visit \
             deadline check, fail-point gate, or visit ledger grew a hot-path cost"
        );
        return ExitCode::FAILURE;
    }

    // Parallel-exploration gate (measured live, no baseline): on a
    // multi-core runner, the parshard strategy at jobs=4 must clear the
    // branchy-tree workload at least PARSHARD_GATE_PERCENT% faster
    // than at jobs=1, best of three runs each. A single-core runner
    // has no parallelism to spend, so the gate logs a skip — the
    // determinism contract (same verdict at every job count) is
    // enforced by the test suite, not here.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 2 {
        println!(
            "fixpoint_guard: single-core runner ({cores} hardware thread), skipping the \
             parallel-exploration wall-clock gate (jobs={PARSHARD_GATE_JOBS} vs jobs=1)"
        );
    } else {
        let prog = fixpoint_suite::branchy_tree(
            fixpoint_suite::PARSHARD_DEPTH,
            fixpoint_suite::PARSHARD_TRIPS,
        );
        let time_at = |jobs: usize| -> f64 {
            let session = VerificationSession::new()
                .with_strategy(verifier::Strategy::PathParallel)
                .with_options(verifier::AnalyzerOptions {
                    unroll_k: fixpoint_suite::PARSHARD_TRIPS.max(64),
                    explore_jobs: u32::try_from(jobs).expect("small"),
                    ..verifier::AnalyzerOptions::default()
                });
            (0..3)
                .map(|_| {
                    let start = std::time::Instant::now();
                    session.run(&prog).expect("branchy tree stays safe");
                    start.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min)
        };
        let seq = time_at(1);
        let par = time_at(PARSHARD_GATE_JOBS);
        let ceiling =
            seq * f64::from(u32::try_from(100 - PARSHARD_GATE_PERCENT).expect("small")) / 100.0;
        println!(
            "parallel exploration on branchy-tree: jobs=1 {:.1} ms, jobs={PARSHARD_GATE_JOBS} \
             {:.1} ms, ceiling {:.1} ms (-{PARSHARD_GATE_PERCENT}%), best of 3",
            seq * 1e3,
            par * 1e3,
            ceiling * 1e3
        );
        if par > ceiling {
            eprintln!(
                "fixpoint_guard: parallel exploration stopped paying for itself: \
                 jobs={PARSHARD_GATE_JOBS} takes {:.1} ms, more than {PARSHARD_GATE_PERCENT}% \
                 short of the {:.1} ms single-job walk on a {cores}-core runner",
                par * 1e3,
                seq * 1e3
            );
            return ExitCode::FAILURE;
        }
    }
    println!("fixpoint_guard: OK");
    ExitCode::SUCCESS
}
