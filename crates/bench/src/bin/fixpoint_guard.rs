//! `fixpoint_guard` — the CI smoke check for the exploration engines:
//! re-runs the strategy sweep (`bench::fixpoint_suite`), compares the
//! totals against the committed `BENCH_PR4.json` baseline, and fails
//! when either regresses by more than 20%:
//!
//! * **`states_allocated`** (absolute): a refactor that quietly
//!   re-introduces clone-everything state propagation fails CI;
//! * **pruned-state ratio** (`states_pruned / subset_checks`,
//!   relative): a change that makes the path-sensitive visited table
//!   stop covering arrivals — more probes buying fewer prunes — fails
//!   CI even if it stays sound.
//!
//! The counters are deterministic (unlike the timings), so this is a
//! stable gate even on noisy runners.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin fixpoint_guard -- [--baseline BENCH_PR4.json]
//! ```
//!
//! Exit status: 0 when within budget, 1 on regression or a missing/old
//! baseline.

use std::process::ExitCode;

use bench::cli::Args;
use bench::fixpoint_suite;
use bench::table;

/// Allowed regression over the committed baseline, in percent — applied
/// to the allocation total and to the pruned-state ratio alike.
const TOLERANCE_PERCENT: u64 = 20;

fn main() -> ExitCode {
    let args = Args::parse();
    let path = args
        .get_str("baseline")
        .unwrap_or("BENCH_PR4.json")
        .to_string();

    let stats = fixpoint_suite::collect_stats();
    let current: u64 = stats.iter().map(|(_, s)| s.states_allocated).sum();
    let shared: u64 = stats.iter().map(|(_, s)| s.states_shared).sum();
    let clone_everything: u64 = stats
        .iter()
        .map(|(_, s)| s.clone_everything_equivalent())
        .sum();
    let pruned: u64 = stats.iter().map(|(_, s)| s.states_pruned).sum();
    let checks: u64 = stats.iter().map(|(_, s)| s.subset_checks).sum();

    let rows = vec![
        vec!["states allocated (deep)".to_string(), current.to_string()],
        vec![
            "states shared (O(1) clones)".to_string(),
            shared.to_string(),
        ],
        vec![
            "clone-everything equivalent".to_string(),
            clone_everything.to_string(),
        ],
        vec!["states pruned (visited)".to_string(), pruned.to_string()],
        vec!["subset checks".to_string(), checks.to_string()],
    ];
    println!(
        "{}",
        table::render(&["strategy sweep total", "count"], &rows)
    );

    let doc = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("fixpoint_guard: cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(baseline) = fixpoint_suite::total_allocated_in_json(&doc) else {
        eprintln!("fixpoint_guard: {path} carries no states_allocated stats");
        return ExitCode::FAILURE;
    };
    let (Some(base_pruned), Some(base_checks)) = (
        fixpoint_suite::total_field_in_json(&doc, "states_pruned"),
        fixpoint_suite::total_field_in_json(&doc, "subset_checks"),
    ) else {
        eprintln!("fixpoint_guard: {path} carries no pruning stats");
        return ExitCode::FAILURE;
    };

    let budget = baseline + baseline * TOLERANCE_PERCENT / 100;
    println!(
        "baseline {baseline} deep copies, budget {budget} (+{TOLERANCE_PERCENT}%), current {current}"
    );
    if current > budget {
        eprintln!(
            "fixpoint_guard: states_allocated regressed: {current} > {budget} \
             (baseline {baseline} + {TOLERANCE_PERCENT}%)"
        );
        return ExitCode::FAILURE;
    }

    // Pruned-state ratio, compared cross-multiplied to stay in integers:
    // fail when  pruned/checks  <  (base_pruned/base_checks) · (1 - tol).
    println!(
        "baseline pruning {base_pruned}/{base_checks} probes, current {pruned}/{checks} \
         (tolerance -{TOLERANCE_PERCENT}% relative)"
    );
    if base_pruned > 0
        && (checks == 0
            || pruned * base_checks * 100 < base_pruned * checks * (100 - TOLERANCE_PERCENT))
    {
        eprintln!(
            "fixpoint_guard: pruned-state ratio regressed: {pruned}/{checks} is more than \
             {TOLERANCE_PERCENT}% below the baseline {base_pruned}/{base_checks}"
        );
        return ExitCode::FAILURE;
    }
    println!("fixpoint_guard: OK");
    ExitCode::SUCCESS
}
