//! `fixpoint_guard` — the CI smoke check for the copy-on-write state
//! layer: re-runs the fixpoint sweep (`bench::fixpoint_suite`), compares
//! the total `states_allocated` against the committed `BENCH_PR3.json`
//! baseline, and fails when it regresses by more than 20%.
//!
//! The allocation counters are deterministic (unlike the timings), so
//! this is a stable gate: a refactor that quietly re-introduces
//! clone-everything state propagation fails CI even on noisy runners.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin fixpoint_guard -- [--baseline BENCH_PR3.json]
//! ```
//!
//! Exit status: 0 when within budget, 1 on regression or a missing/old
//! baseline.

use std::process::ExitCode;

use bench::cli::Args;
use bench::fixpoint_suite;
use bench::table;

/// Allowed regression over the committed baseline, in percent.
const TOLERANCE_PERCENT: u64 = 20;

fn main() -> ExitCode {
    let args = Args::parse();
    let path = args
        .get_str("baseline")
        .unwrap_or("BENCH_PR3.json")
        .to_string();

    let stats = fixpoint_suite::collect_stats();
    let current: u64 = stats.iter().map(|(_, s)| s.states_allocated).sum();
    let shared: u64 = stats.iter().map(|(_, s)| s.states_shared).sum();
    let clone_everything: u64 = stats
        .iter()
        .map(|(_, s)| s.clone_everything_equivalent())
        .sum();

    let rows = vec![
        vec!["states allocated (deep)".to_string(), current.to_string()],
        vec![
            "states shared (O(1) clones)".to_string(),
            shared.to_string(),
        ],
        vec![
            "clone-everything equivalent".to_string(),
            clone_everything.to_string(),
        ],
    ];
    println!(
        "{}",
        table::render(&["fixpoint sweep total", "count"], &rows)
    );

    let doc = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("fixpoint_guard: cannot read baseline {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(baseline) = fixpoint_suite::total_allocated_in_json(&doc) else {
        eprintln!("fixpoint_guard: {path} carries no states_allocated stats");
        return ExitCode::FAILURE;
    };

    let budget = baseline + baseline * TOLERANCE_PERCENT / 100;
    println!(
        "baseline {baseline} deep copies, budget {budget} (+{TOLERANCE_PERCENT}%), current {current}"
    );
    if current > budget {
        eprintln!(
            "fixpoint_guard: states_allocated regressed: {current} > {budget} \
             (baseline {baseline} + {TOLERANCE_PERCENT}%)"
        );
        return ExitCode::FAILURE;
    }
    println!("fixpoint_guard: OK");
    ExitCode::SUCCESS
}
