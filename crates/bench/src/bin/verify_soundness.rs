//! **Experiments E1–E3 and E11** (§III-A): bounded verification of every
//! tnum operator by exhaustive enumeration, optimality comparison against
//! the best transformer, the paper's algebraic observations, and the
//! verification-time table — plus the *domain-generic* campaign that runs
//! the same soundness + optimality sweep over the LLVM known-bits
//! encoding and the kernel's range bounds from one code path.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin verify_soundness \
//!     [--width 6]     # exhaustive soundness width (<= 8)
//!     [--optimality]  # also run best-transformer comparisons (E2)
//!     [--algebra]     # also print the §III-A algebraic witnesses (E3)
//!     [--spot 20000]  # random 64-bit pairs for the width-64 spot check
//!     [--domains]     # run the generic campaign for all three domains
//!     [--bounds-width 6] # campaign width for the bounds domain
//! ```

use bench::cli::Args;
use bench::table::render;
use bitwise_domain::KnownBits;
use domain::{ArithDomain, BitwiseDomain};
use interval_domain::Bounds;
use tnum::Tnum;
use tnum_verify::campaign::{run_campaign, CampaignConfig, CampaignReport};
use tnum_verify::ops::OpCatalog;
use tnum_verify::{check_optimality, check_soundness, spot_check};

fn campaign_rows(report: &CampaignReport) -> Vec<Vec<String>> {
    report
        .entries
        .iter()
        .map(|e| {
            vec![
                report.domain.to_string(),
                e.op.to_string(),
                report.width.to_string(),
                e.pairs.to_string(),
                e.member_checks.to_string(),
                if e.sound {
                    "SOUND".into()
                } else {
                    format!("{} VIOLATIONS", e.violations)
                },
                match e.optimal {
                    Some(true) => "OPTIMAL".into(),
                    Some(false) => format!(
                        "suboptimal ({:.2}%)",
                        e.optimal_fraction.unwrap_or(0.0) * 100.0
                    ),
                    None => "-".into(),
                },
                format!("{:.3}s", e.seconds),
            ]
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let width = args.get_u64("width", 6) as u32;
    let spot_pairs = args.get_u64("spot", 20_000);
    assert!((3..=8).contains(&width), "--width must be in 3..=8");

    println!("E1: exhaustive soundness at width {width} (the SMT substitute; see DESIGN.md)\n");
    let mut rows = Vec::new();
    for op in OpCatalog::<Tnum>::paper_suite() {
        let r = check_soundness(op, width);
        rows.push(vec![
            op.name.to_string(),
            width.to_string(),
            r.pairs.to_string(),
            r.member_checks.to_string(),
            if r.is_sound() {
                "SOUND".into()
            } else {
                format!("{} VIOLATIONS", r.violations.len())
            },
            format!("{:.3}s", r.seconds),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "operator",
                "width",
                "tnum pairs",
                "member checks",
                "verdict",
                "time"
            ],
            &rows
        )
    );
    println!("(Paper: all operators verify at n=64 in seconds with Z3; kern_mul only");
    println!("completes at n=8. Enumeration cost grows as 16^n, hence the width cap.)\n");

    println!("E1b: randomized width-64 spot check, {spot_pairs} pairs x 8 members\n");
    let mut rows = Vec::new();
    for op in OpCatalog::<Tnum>::paper_suite() {
        let r = spot_check(op, spot_pairs, 8, 0xC60_2022);
        rows.push(vec![
            op.name.to_string(),
            (r.pairs * u64::from(r.members_per_pair)).to_string(),
            if r.is_sound() {
                "SOUND".into()
            } else {
                format!("{} VIOLATIONS", r.violations.len())
            },
        ]);
    }
    println!(
        "{}",
        render(&["operator", "concrete checks", "verdict"], &rows)
    );

    if args.has("optimality") {
        let w = width.min(6);
        println!("\nE2: optimality vs the best transformer α∘f∘γ at width {w}\n");
        let mut rows = Vec::new();
        for op in OpCatalog::<Tnum>::paper_suite() {
            let r = check_optimality(op, w);
            rows.push(vec![
                op.name.to_string(),
                format!("{:.4}%", r.optimal_fraction() * 100.0),
                if r.is_optimal() {
                    "OPTIMAL".into()
                } else {
                    "suboptimal".into()
                },
                r.unsound_pairs.to_string(),
            ]);
        }
        println!(
            "{}",
            render(
                &["operator", "exact pairs", "verdict", "unsound pairs"],
                &rows
            )
        );
        println!("(Paper: add/sub/and/or/xor optimal — Theorems 6, 22; no mul is optimal.)");
    }

    if args.has("domains") {
        let tw = width.min(6);
        let bw = (args.get_u64("bounds-width", 6) as u32).min(6);
        println!("\nE12: the domain-generic campaign — same catalog, same code path,");
        println!("three domains (tnum and knownbits at width {tw}, bounds at width {bw})\n");
        fn run<D: ArithDomain + BitwiseDomain>(width: u32, spot: u64) -> CampaignReport {
            run_campaign::<D>(CampaignConfig {
                width,
                optimality: true,
                spot_pairs: spot,
                spot_members: 8,
                seed: 0xC60_2022,
            })
        }
        let mut rows = Vec::new();
        let spot = spot_pairs.min(5_000);
        for report in [
            run::<Tnum>(tw, spot),
            run::<KnownBits>(tw, spot),
            run::<Bounds>(bw, spot),
        ] {
            assert!(
                report.all_sound(),
                "{} campaign found violations",
                report.domain
            );
            rows.extend(campaign_rows(&report));
        }
        println!(
            "{}",
            render(
                &[
                    "domain",
                    "operator",
                    "width",
                    "pairs",
                    "member checks",
                    "sound",
                    "optimal",
                    "time"
                ],
                &rows
            )
        );
        println!("(Every domain passes the identical Eqn. 11 sweep; optimality verdicts");
        println!("differ exactly where the paper predicts: add/sub/bitwise optimal for the");
        println!("value/mask encodings, intervals conservative on bit-level operators.)");
    }

    if args.has("algebra") {
        println!("\nE3: algebraic observations (§III-A)\n");
        let (count, w) = tnum_verify::algebra::addition_non_associativity(3);
        println!("addition non-associative at width 3: {count} triples");
        if let Some(w) = w {
            println!(
                "  e.g. ({} + {}) + {} = {}  but  {} + ({} + {}) = {}",
                w.a, w.b, w.c, w.left, w.a, w.b, w.c, w.right
            );
        }
        let (count, w) = tnum_verify::algebra::add_sub_non_inverse(3);
        println!("add/sub non-inverse at width 3: {count} pairs");
        if let Some(w) = w {
            println!(
                "  e.g. ({} + {}) - {} = {} != {}",
                w.a, w.b, w.b, w.round_trip, w.a
            );
        }
        let (count, w) = tnum_verify::algebra::mul_non_commutativity(|a, b| a.mul(b), 6);
        println!("our_mul non-commutative at width 6: {count} pairs");
        if let Some(w) = w {
            println!(
                "  e.g. {} * {} = {}  but  {} * {} = {}",
                w.a, w.b, w.ab, w.b, w.a, w.ba
            );
        }
    }
}
