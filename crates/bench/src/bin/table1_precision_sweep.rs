//! **Table I** (§VII-E): precision of `our_mul` vs `kern_mul` with
//! increasing bitwidth.
//!
//! For each width the sweep enumerates unordered tnum pairs (the paper's
//! convention for the differing-pair statistics) and reports the same six
//! columns as the paper: total pairs, equal outputs, differing outputs,
//! comparable outputs, and which algorithm is more precise.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin table1_precision_sweep [--min 5] [--max 8]
//!     [--full]            # enumerate widths 9 and 10 exhaustively too
//!     [--samples 2000000] # sample size for widths above --max without --full
//! ```
//!
//! Widths ≤ 8 are always exhaustive. Widths 9–10 enumerate 193M / 1.7G
//! pairs; by default they are *sampled* (uniform, fixed seed) so the run
//! finishes in minutes on a small machine — pass `--full` for the exact
//! counts.

use bench::cli::Args;
use bench::table::{pct, render};
use tnum::Tnum;
use tnum_verify::ops::OpCatalog;
use tnum_verify::{compare_precision_sampled, compare_precision_unordered, PrecisionReport};

fn main() {
    let args = Args::parse();
    let min = args.get_u64("min", 5) as u32;
    let max = args.get_u64("max", 8) as u32;
    let top = args.get_u64("top", 10) as u32;
    let samples = args.get_u64("samples", 2_000_000);
    let full = args.has("full");

    println!("Table I: our_mul vs kern_mul precision, widths {min}..={top}");
    println!(
        "(exhaustive <= {max}; widths above are {} )\n",
        if full {
            "exhaustive (--full)"
        } else {
            "sampled"
        }
    );

    let kern = OpCatalog::<Tnum>::mul_kernel();
    let ours = OpCatalog::<Tnum>::mul();

    let mut rows = Vec::new();
    for width in min..=top {
        let (report, mode): (PrecisionReport, &str) = if width <= max || full {
            (compare_precision_unordered(kern, ours, width), "exact")
        } else {
            (
                compare_precision_sampled(kern, ours, width, samples),
                "sampled",
            )
        };
        rows.push(vec![
            width.to_string(),
            report.total.to_string(),
            format!("{} ({})", report.equal, pct(report.equal, report.total)),
            format!(
                "{} ({})",
                report.different,
                pct(report.different, report.total)
            ),
            format!(
                "{} ({})",
                report.comparable,
                pct(report.comparable, report.different.max(1))
            ),
            format!(
                "{} ({})",
                report.a_more_precise,
                pct(report.a_more_precise, report.comparable.max(1))
            ),
            format!(
                "{} ({})",
                report.b_more_precise,
                pct(report.b_more_precise, report.comparable.max(1))
            ),
            mode.to_string(),
        ]);
        eprintln!("width {width} done ({mode})");
    }

    println!(
        "{}",
        render(
            &[
                "bitwidth",
                "total pairs",
                "equal",
                "different",
                "comparable (of diff)",
                "kern_mul more precise",
                "our_mul more precise",
                "mode",
            ],
            &rows,
        )
    );
    println!("Paper reference (Table I, exact): w5: 8 diff, 2 vs 6; w6: 180 diff, 41 vs 139;");
    println!("w7: 2693 diff, 580 vs 2113; w8: 33002 diff, 6846 vs 26156.");
}
