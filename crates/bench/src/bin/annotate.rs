//! `annotate` — the repo's user-facing verifier tool: assemble a program
//! (from a file or stdin), run the static analyzer, and print either the
//! annotated verifier log or the rejection diagnosis.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin annotate -- --file prog.s \
//!     [--strategy fixpoint|path] [--ctx-size 64] [--strict-alignment] \
//!     [--no-refine] [--reject-loops] [--widen-delay 16] \
//!     [--unroll-k 32] [--visited-cap 32] [--no-thresholds] [--budget 1000000]
//! echo 'r0 = 0
//! exit' | cargo run -p bench --release --bin annotate
//! ```
//!
//! Exit status: 0 when the program is accepted, 1 when rejected, 2 on
//! assembly or usage errors.

use std::io::Read;
use std::process::ExitCode;

use bench::cli::Args;
use ebpf::asm::assemble;
use verifier::{AnalyzerOptions, Strategy, VerificationSession};

fn main() -> ExitCode {
    let args = Args::parse();
    let source = match args_file(&args) {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("cannot read stdin");
                return ExitCode::from(2);
            }
            s
        }
    };

    let prog = match assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("assembly error: {e}");
            return ExitCode::from(2);
        }
    };

    let strategy = match args.get_str("strategy") {
        None | Some("fixpoint") => Strategy::WideningFixpoint,
        Some("path") => Strategy::PathSensitive,
        Some(other) => {
            eprintln!("unknown --strategy {other} (expected fixpoint or path)");
            return ExitCode::from(2);
        }
    };
    let defaults = AnalyzerOptions::default();
    let options = AnalyzerOptions {
        ctx_size: args.get_u64("ctx-size", 64),
        strict_alignment: args.has("strict-alignment"),
        refine_branches: !args.has("no-refine"),
        reject_loops: args.has("reject-loops"),
        widen_delay: args
            .get_u64("widen-delay", u64::from(defaults.widen_delay))
            .min(u64::from(u32::MAX)) as u32,
        harvest_thresholds: !args.has("no-thresholds"),
        analysis_budget: args.get_u64("budget", defaults.analysis_budget),
        unroll_k: args
            .get_u64("unroll-k", u64::from(defaults.unroll_k))
            .min(u64::from(u32::MAX)) as u32,
        visited_cap: args
            .get_u64("visited-cap", u64::from(defaults.visited_cap))
            .min(u64::from(u32::MAX)) as u32,
    };
    let session = VerificationSession::new()
        .with_options(options)
        .with_strategy(strategy);
    match session.run(&prog) {
        Ok(analysis) => {
            println!(
                "ACCEPTED ({} instructions, {} strategy)\n",
                prog.len(),
                analysis.strategy().name()
            );
            print!("{}", analysis.annotate(&prog));
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("REJECTED: {e}\n");
            // Show the program with the faulting instruction marked.
            for (i, insn) in prog.insns().iter().enumerate() {
                let marker = if i == e.pc() { " <-- here" } else { "" };
                println!("{i:>3}: {insn}{marker}");
            }
            ExitCode::FAILURE
        }
    }
}

fn args_file(args: &Args) -> Option<String> {
    // Args only exposes typed getters; reuse the u64 API convention by
    // reading the raw value through a tiny shim.
    args.get_str("file").map(str::to_string)
}
