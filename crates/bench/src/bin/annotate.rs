//! `annotate` — the repo's user-facing verifier tool: assemble a program
//! (from a file or stdin), run the static analyzer, and print either the
//! annotated verifier log or the rejection diagnosis. With `--dir` it
//! instead verifies every `.ebpf` fixture in a directory through the
//! batched engine ([`VerificationSession::run_batch`]) and prints a
//! per-program verdict table plus the throughput roll-up. With
//! `--passes` it skips verification entirely and dumps the static
//! pass framework's facts (`verifier::passes`): per-pc live registers,
//! live stack-slot counts, reaching-definition counts, and
//! dead/unreachable-instruction diagnostics.
//!
//! Usage:
//!
//! ```text
//! cargo run -p bench --release --bin annotate -- --file prog.s \
//!     [--strategy fixpoint|path|parshard] [--ctx-size 64] \
//!     [--strict-alignment] [--no-refine] [--reject-loops] \
//!     [--widen-delay 16] [--unroll-k 32] [--visited-cap 32] \
//!     [--no-thresholds] [--budget 1000000] [--no-memo] [--no-liveness] \
//!     [--explore-jobs 4] [--spawn-depth 2] [--deadline-ms 5000] \
//!     [--fail-fast]
//! cargo run -p bench --release --bin annotate -- --dir fixtures \
//!     [--jobs 4] [--strategy path] [--no-memo] [--no-liveness] \
//!     [--deadline-ms 5000] [--fail-fast]
//! cargo run -p bench --release --bin annotate -- --passes --file prog.s
//! cargo run -p bench --release --bin annotate -- --passes --dir fixtures
//! cargo run -p bench --release --bin annotate -- --list-helpers
//! echo 'r0 = 0
//! exit' | cargo run -p bench --release --bin annotate
//! ```
//!
//! `--deadline-ms N` bounds each program's analysis wall clock
//! ([`AnalyzerOptions::deadline`]); governance failures — blown
//! deadlines and contained panics — normally walk the degradation
//! ladder (parshard → path → fixpoint) before rejecting, and
//! `--fail-fast` reports them immediately instead
//! ([`DegradationPolicy::FailFast`]). The `TNUM_FAILPOINTS` environment
//! variable installs a deterministic fault plan
//! ([`verifier::failpoint`]) for resilience drills, e.g.
//! `TNUM_FAILPOINTS=parshard-job:panic@3`.
//!
//! Exit status: 0 when every program is accepted, 1 when any is
//! rejected, 2 on assembly or usage errors.

use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

use bench::cli::Args;
use ebpf::asm::assemble;
use ebpf::Program;
use verifier::{
    AnalyzerOptions, Cfg, DegradationPolicy, ProgramPasses, Strategy, TransferMemo,
    VerificationSession,
};

fn main() -> ExitCode {
    let args = Args::parse();
    // Holds the fault plan (if any) armed for the whole run; dropping
    // it at exit disarms the fail points.
    let _failpoints = match verifier::failpoint::arm_from_env() {
        Ok(guard) => guard,
        Err(e) => {
            eprintln!("invalid TNUM_FAILPOINTS: {e}");
            return ExitCode::from(2);
        }
    };
    if args.has("list-helpers") {
        list_helpers();
        return ExitCode::SUCCESS;
    }
    if args.has("passes") {
        return if let Some(dir) = args.get_str("dir") {
            match collect_fixtures(dir) {
                Ok((names, progs)) => run_passes_dir(&names, &progs),
                Err(code) => code,
            }
        } else {
            match read_source(&args) {
                Ok(source) => run_passes_single(&source),
                Err(code) => code,
            }
        };
    }
    let strategy = match args.get_str("strategy") {
        None | Some("fixpoint") => Strategy::WideningFixpoint,
        Some("path") => Strategy::PathSensitive,
        Some("parshard") => Strategy::PathParallel,
        Some(other) => {
            eprintln!("unknown --strategy {other} (expected fixpoint, path, or parshard)");
            return ExitCode::from(2);
        }
    };
    let defaults = AnalyzerOptions::default();
    let options = AnalyzerOptions {
        ctx_size: args.get_u64("ctx-size", 64),
        strict_alignment: args.has("strict-alignment"),
        refine_branches: !args.has("no-refine"),
        reject_loops: args.has("reject-loops"),
        widen_delay: args
            .get_u64("widen-delay", u64::from(defaults.widen_delay))
            .min(u64::from(u32::MAX)) as u32,
        harvest_thresholds: !args.has("no-thresholds"),
        analysis_budget: args.get_u64("budget", defaults.analysis_budget),
        unroll_k: args
            .get_u64("unroll-k", u64::from(defaults.unroll_k))
            .min(u64::from(u32::MAX)) as u32,
        visited_cap: args
            .get_u64("visited-cap", u64::from(defaults.visited_cap))
            .min(u64::from(u32::MAX)) as u32,
        memo_cache: if args.has("no-memo") {
            None
        } else {
            Some(Arc::new(TransferMemo::new()))
        },
        liveness_pruning: !args.has("no-liveness"),
        explore_jobs: args
            .get_u64("explore-jobs", u64::from(defaults.explore_jobs))
            .min(u64::from(u16::MAX)) as u32,
        spawn_depth: args
            .get_u64("spawn-depth", u64::from(defaults.spawn_depth))
            .min(u64::from(u32::MAX)) as u32,
        deadline: match args.get_u64("deadline-ms", 0) {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        },
    };
    let session = VerificationSession::new()
        .with_options(options)
        .with_strategy(strategy)
        .with_degradation(if args.has("fail-fast") {
            DegradationPolicy::FailFast
        } else {
            DegradationPolicy::Ladder
        });

    if let Some(dir) = args.get_str("dir") {
        let jobs = args.get_u64("jobs", 0).min(u64::from(u16::MAX)) as usize;
        return run_dir(&session, dir, jobs);
    }
    run_single(&args, &session)
}

/// `--list-helpers`: the registry the verifier and VM share — every
/// helper signature plus the static map geometry.
fn list_helpers() {
    use ebpf::helpers::{ArgKind, RegionSize, RetKind, DEFAULT_MAPS, HELPERS};
    let region = |size: &RegionSize, writable: bool| {
        let dir = if writable { "writable" } else { "readable" };
        match size {
            RegionSize::KeyOf { arg } => format!("{dir} stack region, key_size of r{}", arg + 1),
            RegionSize::ValueOf { arg } => {
                format!("{dir} stack region, value_size of r{}", arg + 1)
            }
            RegionSize::Fixed(n) => format!("{dir} stack region, {n} bytes"),
        }
    };
    println!("helpers ({}):", HELPERS.len());
    for sig in HELPERS {
        let args: Vec<String> = sig
            .args
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let kind = match a {
                    ArgKind::Scalar => "scalar".to_string(),
                    ArgKind::CtxPtr => "ctx pointer".to_string(),
                    ArgKind::MapHandle => "map handle".to_string(),
                    ArgKind::StackRegion { writable, size } => region(size, *writable),
                };
                format!("r{}: {kind}", i + 1)
            })
            .collect();
        let ret = match sig.ret {
            RetKind::Scalar => "scalar".to_string(),
            RetKind::MapValueOrNull { map_arg } => {
                format!("value pointer into the map of r{} or NULL", map_arg + 1)
            }
        };
        println!(
            "  {:>2}  {:<12} ({}) -> {ret}",
            sig.id,
            sig.name,
            args.join(", ")
        );
    }
    println!("\nmaps ({}):", DEFAULT_MAPS.len());
    for (i, m) in DEFAULT_MAPS.iter().enumerate() {
        println!(
            "  map {i}: key_size={} value_size={} max_entries={}",
            m.key_size, m.value_size, m.max_entries
        );
    }
}

/// Loads the program source from `--file` or stdin.
fn read_source(args: &Args) -> Result<String, ExitCode> {
    match args.get_str("file") {
        Some(path) => std::fs::read_to_string(path).map_err(|e| {
            eprintln!("cannot read {path}: {e}");
            ExitCode::from(2)
        }),
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("cannot read stdin");
                return Err(ExitCode::from(2));
            }
            Ok(s)
        }
    }
}

/// Collects and assembles every `.ebpf` fixture under `dir`, sorted by
/// name.
fn collect_fixtures(dir: &str) -> Result<(Vec<String>, Vec<Program>), ExitCode> {
    let mut paths: Vec<std::path::PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "ebpf"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read directory {dir}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    paths.sort();
    if paths.is_empty() {
        eprintln!("no .ebpf fixtures under {dir}");
        return Err(ExitCode::from(2));
    }

    let mut names = Vec::new();
    let mut progs: Vec<Program> = Vec::new();
    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {}: {e}", path.display());
                return Err(ExitCode::from(2));
            }
        };
        match assemble(&source) {
            Ok(p) => {
                names.push(
                    path.file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| path.display().to_string()),
                );
                progs.push(p);
            }
            Err(e) => {
                eprintln!("assembly error in {}: {e}", path.display());
                return Err(ExitCode::from(2));
            }
        }
    }
    Ok((names, progs))
}

/// The per-pc pass dump of one program: live registers, live stack-slot
/// and reaching-definition counts, and dead-code diagnostics.
fn dump_passes(prog: &Program) {
    let cfg = Cfg::build(prog);
    let passes = ProgramPasses::compute(prog, &cfg);
    for (pc, insn) in prog.insns().iter().enumerate() {
        if passes.is_unreachable(pc) {
            println!("{pc:>3}: {insn:<32} [unreachable]");
            continue;
        }
        let live = passes.live_in(pc);
        let regs: Vec<String> = (0..11)
            .filter(|i| live.regs & (1 << i) != 0)
            .map(|i| format!("r{i}"))
            .collect();
        let note = if passes.is_dead_def(pc) {
            "  [dead def]"
        } else {
            ""
        };
        println!(
            "{pc:>3}: {insn:<32} live={{{}}} slots={} reach={}{note}",
            regs.join(","),
            live.slot_count(),
            passes.reaching_defs_in(pc),
        );
    }
}

/// `--passes` on a single program: the full per-pc fact table.
fn run_passes_single(source: &str) -> ExitCode {
    let prog = match assemble(source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("assembly error: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = Cfg::build(&prog);
    let passes = ProgramPasses::compute(&prog, &cfg);
    println!(
        "PASSES ({} instructions, {} dead)\n",
        prog.len(),
        passes.dead_insns()
    );
    dump_passes(&prog);
    ExitCode::SUCCESS
}

/// `--passes --dir`: the per-pc fact table of every fixture, with a
/// per-file header.
fn run_passes_dir(names: &[String], progs: &[Program]) -> ExitCode {
    for (name, prog) in names.iter().zip(progs) {
        let cfg = Cfg::build(prog);
        let passes = ProgramPasses::compute(prog, &cfg);
        println!(
            "== {name} ({} instructions, {} dead)",
            prog.len(),
            passes.dead_insns()
        );
        dump_passes(prog);
        println!();
    }
    ExitCode::SUCCESS
}

/// The classic single-program mode: one source from `--file` or stdin,
/// the annotated log (or rejection diagnosis) on stdout.
fn run_single(args: &Args, session: &VerificationSession) -> ExitCode {
    let source = match read_source(args) {
        Ok(s) => s,
        Err(code) => return code,
    };

    let prog = match assemble(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("assembly error: {e}");
            return ExitCode::from(2);
        }
    };

    match session.run(&prog) {
        Ok(analysis) => {
            println!(
                "ACCEPTED ({} instructions, {} strategy)\n",
                prog.len(),
                analysis.strategy().name()
            );
            let degradations = analysis.stats().degradations;
            if degradations > 0 {
                println!(
                    "note: degraded {degradations} rung(s) down the ladder after \
                     contained governance faults; verdict is from the {} strategy\n",
                    analysis.strategy().name()
                );
            }
            print!("{}", analysis.annotate(&prog));
            ExitCode::SUCCESS
        }
        Err(e) => {
            println!("REJECTED: {e}\n");
            // Show the program with the faulting instruction marked.
            for (i, insn) in prog.insns().iter().enumerate() {
                let marker = if i == e.pc() { " <-- here" } else { "" };
                println!("{i:>3}: {insn}{marker}");
            }
            ExitCode::FAILURE
        }
    }
}

/// The batch mode: every `.ebpf` file under `dir` (sorted by name),
/// verified concurrently through [`VerificationSession::run_batch`],
/// reported as a verdict table plus the throughput summary.
fn run_dir(session: &VerificationSession, dir: &str, jobs: usize) -> ExitCode {
    let (names, progs) = match collect_fixtures(dir) {
        Ok(fixtures) => fixtures,
        Err(code) => return code,
    };

    let report = session.run_batch(&progs, jobs);
    let name_width = names.iter().map(String::len).max().unwrap_or(4).max(4);
    println!("{:<name_width$}  {:>5}  verdict", "file", "insns");
    let mut rejected = 0usize;
    for (name, (prog, result)) in names.iter().zip(progs.iter().zip(&report.results)) {
        match result {
            Ok(_) => println!("{name:<name_width$}  {:>5}  ACCEPTED", prog.len()),
            Err(e) => {
                rejected += 1;
                println!("{name:<name_width$}  {:>5}  REJECTED: {e}", prog.len());
            }
        }
    }
    let stats = &report.stats;
    println!(
        "\n{} programs ({} accepted, {} rejected) in {:.1} ms on {} jobs: {:.1} programs/sec",
        stats.programs,
        stats.accepted,
        stats.rejected,
        stats.elapsed.as_secs_f64() * 1e3,
        stats.jobs,
        stats.programs_per_sec()
    );
    println!(
        "threads: {} outer x {} inner = {} of the budget utilized",
        stats.jobs,
        stats.inner_jobs,
        stats.jobs * stats.inner_jobs
    );
    println!(
        "memo: {} hits / {} misses ({:.1}% hit rate), {} evicted",
        stats.memo_hits,
        stats.memo_misses,
        stats.memo_hit_rate() * 100.0,
        stats.memo_evicted
    );
    if stats.deadline_exceeded + stats.internal_faults > 0 || stats.degradations > 0 {
        println!(
            "governance: {} deadline rejections, {} contained faults, {} ladder downgrades",
            stats.deadline_exceeded, stats.internal_faults, stats.degradations
        );
    }
    if rejected == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
