//! The fixpoint sweep shared by the `fixpoint` bench and the
//! `fixpoint_guard` CI binary: the masked-memset workload across trip
//! counts × widening delays, plus the [`AnalysisStats`] collection and
//! the hand-rolled JSON baseline format (`BENCH_PR3.json`).
//!
//! Keeping the sweep definition in one place guarantees the guard checks
//! exactly the configurations the committed baseline was produced from.

use ebpf::asm::assemble;
use ebpf::Program;
use verifier::{AnalysisStats, Analyzer, AnalyzerOptions};

/// A memset-style loop over a 16-byte buffer with a masked index, safe
/// for every trip count; `trips` only changes how long the counter
/// climbs.
#[must_use]
pub fn masked_memset(trips: u32) -> Program {
    assemble(&format!(
        r"
            r1 = 0
        loop:
            r2 = r1
            r2 &= 15
            r3 = r10
            r3 += -16
            r3 += r2
            *(u8 *)(r3 + 0) = 0
            r1 += 1
            if r1 < {trips} goto loop
            r0 = r1
            exit
        "
    ))
    .expect("assembles")
}

/// Trip counts straddling the default widening delay (16).
pub const TRIPS: [u32; 5] = [4, 8, 16, 64, 1024];

/// Widening delays swept per trip count.
pub const DELAYS: [u32; 4] = [0, 4, 16, 64];

/// Every `(label, program, options)` configuration of the sweep, in the
/// order the bench reports them.
#[must_use]
pub fn sweep_configs() -> Vec<(String, Program, AnalyzerOptions)> {
    let mut out = Vec::new();
    for &trips in &TRIPS {
        let prog = masked_memset(trips);
        for &delay in &DELAYS {
            out.push((
                format!("analyze/trips={trips}/delay={delay}"),
                prog.clone(),
                AnalyzerOptions {
                    widen_delay: delay,
                    ..AnalyzerOptions::default()
                },
            ));
        }
    }
    out
}

/// Runs every sweep configuration once and returns its sharing
/// statistics. Panics if any configuration is rejected — the sweep
/// programs are safe at every delay (the masked index carries the proof
/// even when the counter widens), so a rejection is an engine
/// regression.
#[must_use]
pub fn collect_stats() -> Vec<(String, AnalysisStats)> {
    sweep_configs()
        .into_iter()
        .map(|(label, prog, options)| {
            let analysis = Analyzer::new(options)
                .analyze(&prog)
                .unwrap_or_else(|e| panic!("{label}: masked loop rejected: {e}"));
            (label, analysis.stats())
        })
        .collect()
}

/// Serializes timing rows and per-configuration statistics as the
/// `BENCH_PR3.json` baseline document.
#[must_use]
pub fn to_json(
    group: &str,
    timings: &[(String, f64)],
    stats: &[(String, AnalysisStats)],
) -> String {
    let timing_rows: Vec<String> = timings
        .iter()
        .map(|(label, ns)| format!("    {{\"label\": \"{label}\", \"ns_per_iter\": {ns:.1}}}"))
        .collect();
    let stat_rows: Vec<String> = stats
        .iter()
        .map(|(label, s)| {
            format!(
                "    {{\"label\": \"{label}\", \"stats\": {}}}",
                s.to_json_object()
            )
        })
        .collect();
    format!(
        "{{\n  \"group\": \"{group}\",\n  \"results\": [\n{}\n  ],\n  \"stats\": [\n{}\n  ]\n}}\n",
        timing_rows.join(",\n"),
        stat_rows.join(",\n")
    )
}

/// Extracts the total `states_allocated` across all stats rows of a
/// baseline document written by [`to_json`]. Hand-rolled (the workspace
/// is dependency-free): sums every `"states_allocated": N` occurrence.
///
/// Returns `None` when the document contains no such field (e.g. a
/// pre-PR 3 baseline).
#[must_use]
pub fn total_allocated_in_json(doc: &str) -> Option<u64> {
    const KEY: &str = "\"states_allocated\":";
    let mut total = 0u64;
    let mut found = false;
    let mut rest = doc;
    while let Some(at) = rest.find(KEY) {
        rest = &rest[at + KEY.len()..];
        let digits: String = rest
            .trim_start()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        total += digits.parse::<u64>().ok()?;
        found = true;
    }
    found.then_some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_accepted_and_stats_round_trip_through_json() {
        let stats = collect_stats();
        assert_eq!(stats.len(), TRIPS.len() * DELAYS.len());
        let total: u64 = stats.iter().map(|(_, s)| s.states_allocated).sum();
        assert!(total > 0);
        let doc = to_json("fixpoint_sweep", &[("x".to_string(), 1.0)], &stats);
        assert_eq!(total_allocated_in_json(&doc), Some(total));
        // A document without stats rows reports None, not zero.
        assert_eq!(total_allocated_in_json("{\"results\": []}"), None);
    }
}
