//! The exploration-strategy sweep shared by the `fixpoint` bench and the
//! `fixpoint_guard` CI binary: the masked-memset workload across trip
//! counts × widening delays (fixpoint strategy) × unroll bounds
//! (path-sensitive strategy), the two-back-edge pruning workload, the
//! spill-heavy workload behind the chunked-frame `bytes_materialized`
//! numbers, the visited-cap ablation at the deep-unroll point, the
//! batched `throughput/` family (the 64-program mixed batch per worker
//! count), the parallel-exploration `parshard/` family (branchy-tree
//! and deep-unroll workloads per job count), the map-helper `maps/`
//! family (the fixture-shaped lookup filter and update loop under both
//! strategies), the [`AnalysisStats`] collection, and the hand-rolled
//! JSON baseline format (`BENCH_PR9.json`).
//!
//! Keeping the sweep definition in one place guarantees the guard checks
//! exactly the configurations the committed baseline was produced from.

use ebpf::asm::assemble;
use ebpf::Program;
use verifier::{AnalysisStats, AnalyzerOptions, BatchStats, Strategy, VerificationSession};

/// A memset-style loop over a 16-byte buffer with a masked index, safe
/// for every trip count; `trips` only changes how long the counter
/// climbs.
#[must_use]
pub fn masked_memset(trips: u32) -> Program {
    assemble(&format!(
        r"
            r1 = 0
        loop:
            r2 = r1
            r2 &= 15
            r3 = r10
            r3 += -16
            r3 += r2
            *(u8 *)(r3 + 0) = 0
            r1 += 1
            if r1 < {trips} goto loop
            r0 = r1
            exit
        "
    ))
    .expect("assembles")
}

/// The two-back-edge counter+accumulator loop (13 trips over a 13-byte
/// buffer): a continue-style loop whose accumulator differs across the
/// two paths back to the head. Under the path-sensitive strategy the
/// re-converging paths are where visited-state pruning actually fires —
/// the workload behind the `states_pruned` counters in the baseline.
#[must_use]
pub fn two_back_edge() -> Program {
    assemble(
        r"
            r1 = 0              ; i
            r6 = 0              ; sum
        loop:
            r3 = r10
            r3 += -13
            r3 += r1
            *(u8 *)(r3 + 0) = 0 ; in bounds iff i <= 12
            r1 += 1
            r6 += 1
            if r1 > 12 goto out
            if r2 > 0 goto loop ; back-edge 1
            r6 += 7
            goto loop           ; back-edge 2
        out:
            r0 = r1
            exit
        ",
    )
    .expect("assembles")
}

/// A spill-heavy loop: two loop-carried values are spilled to slots in
/// *different* stack chunks every trip, so each loop-head join grows two
/// chunks of the frame. Under whole-frame copy-on-write this
/// materialized the full 4 KiB frame per change; chunked frames copy two
/// ~0.5 KiB chunks — the `bytes_materialized` delta in the baseline is
/// the observable effect.
#[must_use]
pub fn spill_loop(trips: u32) -> Program {
    assemble(&format!(
        r"
            r1 = 0              ; i
            r6 = 0              ; acc
        loop:
            r6 += r1
            *(u64 *)(r10 - 8) = r6      ; spill in the last chunk
            *(u64 *)(r10 - 264) = r1    ; spill in the fourth chunk
            r7 = *(u64 *)(r10 - 8)
            r1 += 1
            if r1 < {trips} goto loop
            r0 = r7
            exit
        "
    ))
    .expect("assembles")
}

/// A bounded loop whose two branch arms differ **only in a dead
/// register**: each trip takes one of two paths that write different
/// constants into a scratch register nothing ever reads, then
/// re-converge on the same masked store. Unmasked, the two arrivals at
/// the join are distinct states and both get explored; with liveness
/// masking the checkpoint cleaning sets the dead scratch to ⊤ on both,
/// they fingerprint equally, and the second arrival prunes through the
/// masked probe — the workload behind the `live_masked_prunes` counter.
#[must_use]
pub fn dead_scratch_loop(trips: u32) -> Program {
    assemble(&format!(
        r"
            r1 = 0              ; i
        loop:
            r6 = r2             ; unknown bit decides the arm…
            r6 &= 1
            if r6 > 0 goto odd
            r6 = 11             ; …and both arms overwrite it, so the
            goto join
        odd:
            r6 = 22             ; arrivals differ only in dead r6
        join:
            r4 = r1
            r4 &= 15
            r3 = r10
            r3 += -16
            r3 += r4
            *(u8 *)(r3 + 0) = 0
            r1 += 1
            if r1 < {trips} goto loop
            r0 = r1
            exit
        "
    ))
    .expect("assembles")
}

/// A binary branch tree feeding a per-path bounded loop: `depth`
/// unknown-bit diamonds each fold a distinct power of two into `r6`, so
/// all `2^depth` paths reach the loop with pairwise-distinct *live*
/// accumulators — none of them prune each other, and the parallel
/// explorer can hand every subtree out as a stealable job. The loop
/// body masks its store index into the 16-byte window, so the program
/// is safe for every trip count and accumulator value.
#[must_use]
pub fn branchy_tree(depth: u32, trips: u32) -> Program {
    let mut src = String::from("    r2 = *(u8 *)(r1 + 0)\n    r6 = 0\n");
    for i in 0..depth {
        let bit = 1u64 << i;
        src.push_str(&format!(
            "    r3 = r2\n    r3 >>= {i}\n    r3 &= 1\n    if r3 > 0 goto join{i}\n    r6 += {bit}\njoin{i}:\n"
        ));
    }
    src.push_str(&format!(
        "    r7 = 0\nloop:\n    r4 = r7\n    r4 += r6\n    r4 &= 15\n    r3 = r10\n    r3 += -16\n    r3 += r4\n    *(u8 *)(r3 + 0) = 0\n    r7 += 1\n    if r7 < {trips} goto loop\n    r0 = r6\n    exit\n"
    ));
    assemble(&src).expect("assembles")
}

/// A loop-free packet-filter-style program: an untrusted byte bounded
/// by a branch guard (`bound` ≤ 63 keeps the store inside the 64-byte
/// window), a checked store, and a pure scalar ALU tail — the acyclic
/// workload in the mixed throughput batch, and a memo-friendly one (the
/// ALU tail repeats across `bound` variants).
///
/// # Panics
///
/// Panics when `bound > 63` (the store would not be provable).
#[must_use]
pub fn packet_filter(bound: u32) -> Program {
    assert!(bound <= 63, "bound {bound} would defeat the bounds proof");
    assemble(&format!(
        r"
            r2 = *(u8 *)(r1 + 0)
            if r2 > {bound} goto drop
            r3 = r10
            r3 += -64
            r3 += r2
            *(u8 *)(r3 + 0) = 1
            r4 = r2
            r4 <<= 2
            r4 += 14
            r4 &= 255
            r0 = r4
            exit
        drop:
            r0 = 0
            exit
        "
    ))
    .expect("assembles")
}

/// The canonical map-helper filter (the `fixtures/map_filter.ebpf`
/// shape): build a key on the stack, `map_lookup` it, NULL-check the
/// returned value pointer, and bump the counter through the refined
/// edge. Exercises the helper registry check, the `or_null` refinement
/// in `branch_states`, and the map-value bounds proof — none of which
/// the memo cache may serve.
#[must_use]
pub fn map_filter() -> Program {
    assemble(
        r"
            *(u32 *)(r10 - 4) = 1
            r1 = map 0
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto miss
            r1 = *(u64 *)(r0 + 0)
            r1 += 1
            *(u64 *)(r0 + 0) = r1
            r0 = 1
            exit
        miss:
            r0 = 0
            exit
        ",
    )
    .expect("assembles")
}

/// A bounded `map_update` loop (the `fixtures/map_update_loop.ebpf`
/// shape at a parameterized trip count): the key and value regions are
/// re-proved initialized on every trip and every call clobbers
/// `r1`–`r5`, so only `r6` carries the counter. Because helper
/// transfers are never memoized, this is the loop workload whose
/// per-trip cost the memo cache cannot amortize — the `maps/` rows'
/// `subset_checks` are what `fixpoint_guard` gates.
#[must_use]
pub fn map_update_loop(trips: u32) -> Program {
    assemble(&format!(
        r"
            r6 = 0
        loop:
            *(u32 *)(r10 - 4) = r6
            *(u64 *)(r10 - 16) = r6
            r1 = map 0
            r2 = r10
            r2 += -4
            r3 = r10
            r3 += -16
            r4 = 0
            call 2
            r6 += 1
            if r6 < {trips} goto loop
            r0 = 0
            exit
        "
    ))
    .expect("assembles")
}

/// Programs in the mixed throughput batch.
pub const THROUGHPUT_BATCH: usize = 64;

/// Worker counts the throughput family sweeps.
pub const THROUGHPUT_JOBS: [usize; 4] = [1, 2, 4, 8];

/// The 64-program mixed batch behind the `throughput/` bench family:
/// loopy workloads (masked memset at varied trip counts, the
/// two-back-edge loop, the spill loop) interleaved with loop-free
/// packet filters, so work stealing has real cost variance to level and
/// the shared memo cache sees both repeated and fresh transfer
/// arguments.
#[must_use]
pub fn throughput_batch() -> Vec<Program> {
    (0..THROUGHPUT_BATCH)
        .map(|i| {
            let k = (i / 4) as u32;
            match i % 4 {
                0 => masked_memset(4 + (k % 8) * 8),
                1 => packet_filter(7 + (k % 8) * 8),
                2 => two_back_edge(),
                _ => spill_loop(8 + (k % 8) * 8),
            }
        })
        .collect()
}

/// The baseline label of one throughput configuration.
#[must_use]
pub fn throughput_label(jobs: usize) -> String {
    format!("throughput/batch={THROUGHPUT_BATCH}/jobs={jobs}")
}

/// Runs the mixed batch once per [`THROUGHPUT_JOBS`] worker count —
/// each on a fresh session, so every configuration starts from a cold
/// memo cache — and returns the `(label, stats)` rows the baseline
/// document records.
#[must_use]
pub fn throughput_rows() -> Vec<(String, BatchStats)> {
    let batch = throughput_batch();
    THROUGHPUT_JOBS
        .iter()
        .map(|&jobs| {
            let report = VerificationSession::new().run_batch(&batch, jobs);
            assert_eq!(
                report.stats.rejected, 0,
                "throughput batch programs are all safe"
            );
            (throughput_label(jobs), report.stats)
        })
        .collect()
}

/// Job counts the parallel-exploration (`parshard/`) family sweeps.
pub const PARSHARD_JOBS: [usize; 4] = [1, 2, 4, 8];

/// Diamond count of the branchy-tree parshard workload: 64 distinct
/// paths, each an independent loop walk.
pub const PARSHARD_DEPTH: u32 = 6;

/// Per-path loop trips of the branchy-tree parshard workload — chosen
/// so one subtree is a few thousand visits, far above the spawn
/// overhead of a stealable job.
pub const PARSHARD_TRIPS: u32 = 400;

/// The baseline label of one parshard configuration.
#[must_use]
pub fn parshard_label(workload: &str, jobs: usize) -> String {
    format!("parshard/{workload}/jobs={jobs}")
}

/// Every `(label, program, session)` configuration of the `parshard/`
/// family: the branchy tree (`2^depth` independent subtrees — the
/// workload intra-program parallelism actually helps) and the
/// deep-unroll masked memset (one serial chain — the honest
/// no-parallelism-to-find row) under [`Strategy::PathParallel`] at each
/// [`PARSHARD_JOBS`] count. Every configuration unrolls its loop
/// exactly, so the whole cost is path exploration.
#[must_use]
pub fn parshard_configs(depth: u32, trips: u32) -> Vec<(String, Program, VerificationSession)> {
    let mut out = Vec::new();
    for &jobs in &PARSHARD_JOBS {
        out.push((
            parshard_label("branchy_tree", jobs),
            branchy_tree(depth, trips),
            VerificationSession::new()
                .with_strategy(Strategy::PathParallel)
                .with_options(AnalyzerOptions {
                    unroll_k: trips.max(64),
                    explore_jobs: jobs as u32,
                    ..AnalyzerOptions::default()
                }),
        ));
        out.push((
            parshard_label("deep_unroll", jobs),
            masked_memset(1024),
            VerificationSession::new()
                .with_strategy(Strategy::PathParallel)
                .with_options(AnalyzerOptions {
                    unroll_k: 1024,
                    explore_jobs: jobs as u32,
                    ..AnalyzerOptions::default()
                }),
        ));
    }
    out
}

/// Runs the full-size parshard family once per configuration and
/// returns `(label, wall-clock ms, stats)` rows. Unlike the sweep's
/// counters these are *not* deterministic — visit/prune totals shift
/// with scheduling — which is why [`to_json`] keeps them in their own
/// section under `par_`-prefixed keys, outside the guard's totals.
#[must_use]
pub fn parshard_rows() -> Vec<(String, f64, AnalysisStats)> {
    parshard_configs(PARSHARD_DEPTH, PARSHARD_TRIPS)
        .into_iter()
        .map(|(label, prog, session)| {
            let start = std::time::Instant::now();
            let analysis = session
                .run(&prog)
                .unwrap_or_else(|e| panic!("{label}: parshard program rejected: {e}"));
            let ms = start.elapsed().as_secs_f64() * 1e3;
            (label, ms, analysis.stats())
        })
        .collect()
}

/// Trip counts straddling the default widening delay (16) and the
/// default unroll bound (32).
pub const TRIPS: [u32; 5] = [4, 8, 16, 64, 1024];

/// Widening delays swept per trip count (fixpoint strategy).
pub const DELAYS: [u32; 4] = [0, 4, 16, 64];

/// Unroll bounds swept per trip count (path-sensitive strategy): 0 is
/// the pure widening fallback, 64 unrolls everything but the 1024-trip
/// configuration exactly.
pub const UNROLLS: [u32; 3] = [0, 16, 64];

/// Every `(label, program, session)` configuration of the sweep, in the
/// order the bench reports them: the masked-memset trips × delays under
/// the fixpoint strategy, trips × unrolls under the path-sensitive
/// strategy, the ablation and pruning workloads, then the map-helper
/// `maps/` family ([`maps_configs`]).
#[must_use]
pub fn sweep_configs() -> Vec<(String, Program, VerificationSession)> {
    let mut out = Vec::new();
    for &trips in &TRIPS {
        let prog = masked_memset(trips);
        for &delay in &DELAYS {
            out.push((
                format!("fixpoint/trips={trips}/delay={delay}"),
                prog.clone(),
                VerificationSession::new().with_options(AnalyzerOptions {
                    widen_delay: delay,
                    ..AnalyzerOptions::default()
                }),
            ));
        }
        for &unroll in &UNROLLS {
            out.push((
                format!("path/trips={trips}/unroll={unroll}"),
                prog.clone(),
                VerificationSession::new()
                    .with_strategy(Strategy::PathSensitive)
                    .with_options(AnalyzerOptions {
                        unroll_k: unroll,
                        ..AnalyzerOptions::default()
                    }),
            ));
        }
    }
    // Visited-cap ablation at the deep-unroll point (trips=1024,
    // unroll=64): unbounded chains isolate what fingerprint gating alone
    // buys; cap=8 shows the chain cap's marginal effect past the default.
    for &cap in &[0u32, 8] {
        out.push((
            format!("path/trips=1024/unroll=64/cap={cap}"),
            masked_memset(1024),
            VerificationSession::new()
                .with_strategy(Strategy::PathSensitive)
                .with_options(AnalyzerOptions {
                    unroll_k: 64,
                    visited_cap: cap,
                    ..AnalyzerOptions::default()
                }),
        ));
    }
    // Liveness-masking ablation: the same deep-unroll configuration with
    // `liveness_pruning` off is the unmasked twin the guard's
    // masked-pruning gate (and EXPERIMENTS E18) compares against, under
    // both strategies.
    out.push((
        "path/trips=1024/unroll=64/masking=off".to_string(),
        masked_memset(1024),
        VerificationSession::new()
            .with_strategy(Strategy::PathSensitive)
            .with_options(AnalyzerOptions {
                unroll_k: 64,
                liveness_pruning: false,
                ..AnalyzerOptions::default()
            }),
    ));
    out.push((
        "fixpoint/trips=1024/delay=16/masking=off".to_string(),
        masked_memset(1024),
        VerificationSession::new().with_options(AnalyzerOptions {
            liveness_pruning: false,
            ..AnalyzerOptions::default()
        }),
    ));
    // The dead-scratch loop, masked vs unmasked: per-trip arrivals at
    // the join differ only in the dead scratch register, so the masked
    // run collapses the two paths at every trip (`live_masked_prunes`)
    // while the unmasked run walks both.
    for masking in [true, false] {
        out.push((
            format!(
                "path/dead_scratch/trips=64{}",
                if masking { "" } else { "/masking=off" }
            ),
            dead_scratch_loop(64),
            VerificationSession::new()
                .with_strategy(Strategy::PathSensitive)
                .with_options(AnalyzerOptions {
                    liveness_pruning: masking,
                    ..AnalyzerOptions::default()
                }),
        ));
    }
    let pruning = two_back_edge();
    out.push((
        "fixpoint/two_back_edge".to_string(),
        pruning.clone(),
        VerificationSession::new(),
    ));
    for &unroll in &[4u32, 32] {
        // Below the 13 trips (fallback widening + summary pruning) and
        // above them (exact unrolling, pruning on path re-convergence).
        out.push((
            format!("path/two_back_edge/unroll={unroll}"),
            pruning.clone(),
            VerificationSession::new()
                .with_strategy(Strategy::PathSensitive)
                .with_options(AnalyzerOptions {
                    unroll_k: unroll,
                    ..AnalyzerOptions::default()
                }),
        ));
    }
    // The spill-heavy workload: loop-carried spills in two different
    // chunks, under both strategies — the chunked-frame
    // `bytes_materialized` showcase.
    let spills = spill_loop(64);
    out.push((
        "fixpoint/spill_loop/trips=64".to_string(),
        spills.clone(),
        VerificationSession::new(),
    ));
    out.push((
        "path/spill_loop/trips=64/unroll=16".to_string(),
        spills,
        VerificationSession::new()
            .with_strategy(Strategy::PathSensitive)
            .with_options(AnalyzerOptions {
                unroll_k: 16,
                ..AnalyzerOptions::default()
            }),
    ));
    out.extend(maps_configs());
    out
}

/// The map-helper `maps/` family (appended to [`sweep_configs`], and
/// the rows `fixpoint_guard` gates by label): the lookup filter under
/// both strategies, and the update loop at a short and a deep trip
/// count. Helper transfers are never memoized, so these rows measure
/// the registry check, the NULL-refinement split, and the map-value
/// bounds proofs at full per-visit cost.
#[must_use]
pub fn maps_configs() -> Vec<(String, Program, VerificationSession)> {
    let mut out = Vec::new();
    out.push((
        "maps/filter/fixpoint".to_string(),
        map_filter(),
        VerificationSession::new(),
    ));
    out.push((
        "maps/filter/path".to_string(),
        map_filter(),
        VerificationSession::new().with_strategy(Strategy::PathSensitive),
    ));
    for &(trips, unroll) in &[(8u32, 16u32), (64, 64)] {
        out.push((
            format!("maps/update_loop/trips={trips}/fixpoint"),
            map_update_loop(trips),
            VerificationSession::new(),
        ));
        out.push((
            format!("maps/update_loop/trips={trips}/path/unroll={unroll}"),
            map_update_loop(trips),
            VerificationSession::new()
                .with_strategy(Strategy::PathSensitive)
                .with_options(AnalyzerOptions {
                    unroll_k: unroll,
                    ..AnalyzerOptions::default()
                }),
        ));
    }
    out
}

/// Runs every sweep configuration once and returns its statistics.
/// Panics if any configuration is rejected — the sweep programs are safe
/// under every configuration (the masked index carries the memset proof
/// even when the counter widens; the two-back-edge exit test is
/// harvested as a threshold), so a rejection is an engine regression.
#[must_use]
pub fn collect_stats() -> Vec<(String, AnalysisStats)> {
    sweep_configs()
        .into_iter()
        .map(|(label, prog, session)| {
            let analysis = session
                .run(&prog)
                .unwrap_or_else(|e| panic!("{label}: sweep program rejected: {e}"));
            (label, analysis.stats())
        })
        .collect()
}

/// Serializes timing rows, per-configuration statistics, batched
/// throughput rows, and parallel-exploration rows as the
/// `BENCH_PR8.json` baseline document.
///
/// Throughput rows deliberately prefix their memo counters
/// (`batch_memo_hits` etc.) and parshard rows prefix *all* their
/// counters (`par_subtrees_spawned` etc.) so [`total_field_in_json`]
/// totals over the per-configuration `stats` rows never absorb batch
/// traffic or scheduling-dependent parallel counters.
#[must_use]
pub fn to_json(
    group: &str,
    timings: &[(String, f64)],
    stats: &[(String, AnalysisStats)],
    throughput: &[(String, BatchStats)],
    parshard: &[(String, f64, AnalysisStats)],
) -> String {
    let timing_rows: Vec<String> = timings
        .iter()
        .map(|(label, ns)| format!("    {{\"label\": \"{label}\", \"ns_per_iter\": {ns:.1}}}"))
        .collect();
    let stat_rows: Vec<String> = stats
        .iter()
        .map(|(label, s)| {
            format!(
                "    {{\"label\": \"{label}\", \"stats\": {}}}",
                s.to_json_object()
            )
        })
        .collect();
    let throughput_rows: Vec<String> = throughput
        .iter()
        .map(|(label, s)| {
            format!(
                "    {{\"label\": \"{label}\", \"programs_per_sec\": {:.1}, \
                 \"accepted\": {}, \"batch_memo_hits\": {}, \
                 \"batch_memo_misses\": {}, \"batch_memo_evicted\": {}, \
                 \"deadline_exceeded\": {}, \"internal_faults\": {}, \
                 \"degradations\": {}}}",
                s.programs_per_sec(),
                s.accepted,
                s.memo_hits,
                s.memo_misses,
                s.memo_evicted,
                s.deadline_exceeded,
                s.internal_faults,
                s.degradations
            )
        })
        .collect();
    let parshard_rows: Vec<String> = parshard
        .iter()
        .map(|(label, ms, s)| {
            format!(
                "    {{\"label\": \"{label}\", \"par_ms\": {ms:.2}, \
                 \"par_visits\": {}, \"par_subtrees_spawned\": {}, \
                 \"par_steals\": {}, \"par_shared_prunes\": {}, \
                 \"par_states_pruned\": {}}}",
                s.visits, s.subtrees_spawned, s.steals, s.shared_prunes, s.states_pruned
            )
        })
        .collect();
    format!(
        "{{\n  \"group\": \"{group}\",\n  \"results\": [\n{}\n  ],\n  \"stats\": [\n{}\n  ],\n  \"throughput\": [\n{}\n  ],\n  \"parshard\": [\n{}\n  ]\n}}\n",
        timing_rows.join(",\n"),
        stat_rows.join(",\n"),
        throughput_rows.join(",\n"),
        parshard_rows.join(",\n")
    )
}

/// Extracts the total of one numeric stats field across all rows of a
/// baseline document written by [`to_json`]. Hand-rolled (the workspace
/// is dependency-free): sums every `"<field>": N` occurrence.
///
/// Returns `None` when the document contains no such field (e.g. an
/// older baseline that predates the counter).
#[must_use]
pub fn total_field_in_json(doc: &str, field: &str) -> Option<u64> {
    let key = format!("\"{field}\":");
    let mut total = 0u64;
    let mut found = false;
    let mut rest = doc;
    while let Some(at) = rest.find(&key) {
        rest = &rest[at + key.len()..];
        let digits: String = rest
            .trim_start()
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        total += digits.parse::<u64>().ok()?;
        found = true;
    }
    found.then_some(total)
}

/// Total `states_allocated` across all stats rows of a baseline
/// document — the shorthand [`total_field_in_json`] grew out of.
#[must_use]
pub fn total_allocated_in_json(doc: &str) -> Option<u64> {
    total_field_in_json(doc, "states_allocated")
}

/// Extracts one numeric stats field from the row labelled exactly
/// `label` in a baseline document written by [`to_json`] — the
/// per-configuration lookup behind the guard's `subset_checks`
/// regression gate at the deep-unroll point.
///
/// Returns `None` when the label or the field is absent. The label is
/// matched as the full quoted string, so `path/trips=1024/unroll=64`
/// does not match its `/cap=…` ablation variants.
#[must_use]
pub fn label_field_in_json(doc: &str, label: &str, field: &str) -> Option<u64> {
    // Anchor on the stats row (the same label also appears as a timing
    // row, which carries no counters).
    let label_key = format!("\"label\": \"{label}\", \"stats\"");
    let at = doc.find(&label_key)?;
    let row = &doc[at + label_key.len()..];
    // Stay inside this row: the field must appear before the next label.
    let row = match row.find("\"label\":") {
        Some(end) => &row[..end],
        None => row,
    };
    let field_key = format!("\"{field}\":");
    let after = &row[row.find(&field_key)? + field_key.len()..];
    let digits: String = after
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts one numeric field — integer or decimal — from the row
/// labelled exactly `label` anywhere in a baseline document written by
/// [`to_json`]. The float-capable sibling of [`label_field_in_json`],
/// for the `throughput` rows' `programs_per_sec` rates.
///
/// Returns `None` when the label or the field is absent.
#[must_use]
pub fn label_float_in_json(doc: &str, label: &str, field: &str) -> Option<f64> {
    let label_key = format!("\"label\": \"{label}\",");
    let at = doc.find(&label_key)?;
    let row = &doc[at + label_key.len()..];
    // Stay inside this row: the field must appear before the next label.
    let row = match row.find("\"label\":") {
        Some(end) => &row[..end],
        None => row,
    };
    let field_key = format!("\"{field}\":");
    let after = &row[row.find(&field_key)? + field_key.len()..];
    let number: String = after
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    number.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_accepted_and_stats_round_trip_through_json() {
        let stats = collect_stats();
        assert_eq!(
            stats.len(),
            // trips sweep + cap ablation (2) + masking ablation (2) +
            // dead-scratch masking pair (2) + two-back-edge (3) +
            // spill loop (2) + maps family (6).
            TRIPS.len() * (DELAYS.len() + UNROLLS.len()) + 17
        );
        let total: u64 = stats.iter().map(|(_, s)| s.states_allocated).sum();
        assert!(total > 0);
        let doc = to_json(
            "fixpoint_sweep",
            &[("x".to_string(), 1.0)],
            &stats,
            &[],
            &[],
        );
        assert_eq!(total_allocated_in_json(&doc), Some(total));
        let pruned: u64 = stats.iter().map(|(_, s)| s.states_pruned).sum();
        assert!(pruned > 0, "the sweep must exercise pruning");
        assert_eq!(total_field_in_json(&doc, "states_pruned"), Some(pruned));
        let checks: u64 = stats.iter().map(|(_, s)| s.subset_checks).sum();
        assert_eq!(total_field_in_json(&doc, "subset_checks"), Some(checks));
        // A document without stats rows reports None, not zero.
        assert_eq!(total_allocated_in_json("{\"results\": []}"), None);
        assert_eq!(total_field_in_json("{}", "states_pruned"), None);
        // Per-label extraction: exact label match, no prefix bleed into
        // the /cap ablation rows, None on unknown labels or fields.
        let deep = stats
            .iter()
            .find(|(l, _)| l == "path/trips=1024/unroll=64")
            .expect("deep-unroll row present");
        assert_eq!(
            label_field_in_json(&doc, "path/trips=1024/unroll=64", "subset_checks"),
            Some(deep.1.subset_checks)
        );
        let capped = stats
            .iter()
            .find(|(l, _)| l == "path/trips=1024/unroll=64/cap=0")
            .expect("cap ablation row present");
        assert_eq!(
            label_field_in_json(&doc, "path/trips=1024/unroll=64/cap=0", "subset_checks"),
            Some(capped.1.subset_checks)
        );
        assert_eq!(label_field_in_json(&doc, "no/such/label", "visits"), None);
        assert_eq!(
            label_field_in_json(&doc, "path/trips=1024/unroll=64", "no_such_field"),
            None
        );
    }

    #[test]
    fn maps_family_rows_are_accepted_and_round_trip_through_json() {
        let rows: Vec<(String, AnalysisStats)> = maps_configs()
            .into_iter()
            .map(|(label, prog, session)| {
                let analysis = session
                    .run(&prog)
                    .unwrap_or_else(|e| panic!("{label}: maps program rejected: {e}"));
                (label, analysis.stats())
            })
            .collect();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|(l, _)| l.starts_with("maps/")));
        // The deep update loop is the family's regression surface: it
        // must actually probe the visited table on its back edge.
        let deep = rows
            .iter()
            .find(|(l, _)| l == "maps/update_loop/trips=64/path/unroll=64")
            .expect("deep maps row present");
        assert!(deep.1.subset_checks > 0, "{:?}", deep.1);
        // The guard reads the family back per label from the baseline.
        let doc = to_json("fixpoint_sweep", &[], &rows, &[], &[]);
        assert_eq!(
            label_field_in_json(&doc, &deep.0, "subset_checks"),
            Some(deep.1.subset_checks)
        );
    }

    #[test]
    fn fingerprint_and_eviction_counters_fire_on_the_sweep() {
        let stats = collect_stats();
        let by_label = |needle: &str| {
            stats
                .iter()
                .find(|(l, _)| l == needle)
                .unwrap_or_else(|| panic!("{needle} missing from sweep"))
                .1
        };
        // Deep unrolling floods the loop-head chain: fingerprint gating
        // must dismiss most candidates and the cap must evict.
        let deep = by_label("path/trips=1024/unroll=64");
        assert!(deep.fingerprint_rejects > 0, "{deep:?}");
        assert!(deep.visited_evicted > 0, "{deep:?}");
        // Unbounded chains never capacity-evict; dominance eviction may
        // still fire, but the probe side must dismiss more than the
        // capped run examines in full.
        let uncapped = by_label("path/trips=1024/unroll=64/cap=0");
        assert!(uncapped.fingerprint_rejects >= deep.fingerprint_rejects);
        // The spill loop materializes chunks, not whole frames: the
        // copied volume stays far below a 4 KiB-per-join regime.
        let spills = by_label("fixpoint/spill_loop/trips=64");
        assert!(spills.bytes_materialized > 0);
        assert!(
            spills.bytes_materialized < spills.states_allocated * 4096,
            "chunked frames must copy less than whole-frame semantics: {spills:?}"
        );
    }

    #[test]
    fn masking_cuts_subset_checks_at_the_deep_unroll_point() {
        let stats = collect_stats();
        let by_label = |needle: &str| {
            stats
                .iter()
                .find(|(l, _)| l == needle)
                .unwrap_or_else(|| panic!("{needle} missing from sweep"))
                .1
        };
        let masked = by_label("path/trips=1024/unroll=64");
        let unmasked = by_label("path/trips=1024/unroll=64/masking=off");
        println!("masked:   {masked:?}");
        println!("unmasked: {unmasked:?}");
        // The ablation twin runs with masking off: its new counters are
        // structurally zero.
        assert_eq!(unmasked.live_masked_prunes, 0, "{unmasked:?}");
        assert_eq!(unmasked.dead_components_cleared, 0, "{unmasked:?}");
        // The masked run cleans dead components at checkpoints and
        // spends at least 25% fewer deep subset checks than its
        // unmasked twin (the PR 7 acceptance bar, re-checked against
        // the committed baseline by `fixpoint_guard`).
        assert!(masked.dead_components_cleared > 0, "{masked:?}");
        assert!(
            masked.subset_checks * 4 <= unmasked.subset_checks * 3,
            "masked {} vs unmasked {} subset checks",
            masked.subset_checks,
            unmasked.subset_checks
        );
        // The dead-scratch loop is where masked probes actually *prune*:
        // per-trip arrivals at the join differ only in the dead scratch
        // register, so cleaning makes them collide by fingerprint and
        // the masked run explores strictly less than the unmasked one.
        let ds_masked = by_label("path/dead_scratch/trips=64");
        let ds_unmasked = by_label("path/dead_scratch/trips=64/masking=off");
        assert!(ds_masked.live_masked_prunes > 0, "{ds_masked:?}");
        assert!(
            ds_masked.visits < ds_unmasked.visits,
            "masked {} vs unmasked {} visits",
            ds_masked.visits,
            ds_unmasked.visits
        );
        // The fixpoint strategy keeps its verdict-relevant work identical
        // under masking (same visits), it only cleans.
        let fx_masked = by_label("fixpoint/trips=1024/delay=16");
        let fx_unmasked = by_label("fixpoint/trips=1024/delay=16/masking=off");
        assert_eq!(fx_masked.visits, fx_unmasked.visits);
        assert!(fx_masked.dead_components_cleared > 0, "{fx_masked:?}");
    }

    #[test]
    fn throughput_batch_is_mixed_and_accepted() {
        let batch = throughput_batch();
        assert_eq!(batch.len(), THROUGHPUT_BATCH);
        // Mixed sizes: the batch must contain more than one distinct
        // program length (loopy and loop-free workloads differ).
        let mut lens: Vec<usize> = batch.iter().map(ebpf::Program::len).collect();
        lens.sort_unstable();
        lens.dedup();
        assert!(lens.len() > 1, "batch must mix workload shapes: {lens:?}");
        // A slice through the batched engine: every program accepted,
        // and the shared cache sees cross-program hits.
        let report = VerificationSession::new().run_batch(&batch[..8], 2);
        assert_eq!(report.stats.accepted, 8, "{:?}", report.stats);
        assert!(report.stats.memo_hits > 0, "{:?}", report.stats);
    }

    #[test]
    fn throughput_rows_round_trip_through_json() {
        use std::time::Duration;
        let stats = BatchStats {
            programs: THROUGHPUT_BATCH,
            accepted: THROUGHPUT_BATCH,
            rejected: 0,
            jobs: 4,
            inner_jobs: 1,
            elapsed: Duration::from_millis(128),
            per_worker_programs: vec![16; 4],
            per_worker_visits: vec![100; 4],
            memo_hits: 375,
            memo_misses: 225,
            memo_evicted: 3,
            deadline_exceeded: 0,
            internal_faults: 0,
            degradations: 0,
        };
        let label = throughput_label(4);
        let doc = to_json(
            "fixpoint_sweep",
            &[],
            &[],
            &[(label.clone(), stats.clone())],
            &[],
        );
        let rate = label_float_in_json(&doc, &label, "programs_per_sec").unwrap();
        assert!((rate - stats.programs_per_sec()).abs() < 0.1, "{rate}");
        assert_eq!(
            label_float_in_json(&doc, &label, "batch_memo_hits"),
            Some(375.0)
        );
        assert_eq!(
            label_float_in_json(&doc, &label, "internal_faults"),
            Some(0.0)
        );
        assert_eq!(label_float_in_json(&doc, &label, "no_such_field"), None);
        assert_eq!(
            label_float_in_json(&doc, "throughput/batch=64/jobs=9", "programs_per_sec"),
            None
        );
        // The prefixed batch counters never leak into the sweep totals.
        assert_eq!(total_field_in_json(&doc, "memo_hits"), None);
        assert_eq!(total_field_in_json(&doc, "batch_memo_hits"), Some(375));
    }

    #[test]
    fn parshard_rows_round_trip_through_json_without_leaking_totals() {
        // A scaled-down family (8 paths × 24 trips) keeps the debug-mode
        // test fast; the bench emits the full-size rows.
        let rows: Vec<(String, f64, AnalysisStats)> = parshard_configs(3, 24)
            .into_iter()
            .map(|(label, prog, session)| {
                let analysis = session.run(&prog).expect("parshard workload accepted");
                (label, 1.5, analysis.stats())
            })
            .collect();
        assert_eq!(rows.len(), PARSHARD_JOBS.len() * 2);
        // The branchy tree spawns subtrees at every job count (spawning
        // is a property of the walk, not the worker count)…
        let branchy = rows
            .iter()
            .find(|(l, _, _)| l == &parshard_label("branchy_tree", 4))
            .expect("branchy row present");
        assert!(branchy.2.subtrees_spawned > 0, "{:?}", branchy.2);
        // …while the serial deep-unroll chain has nothing to hand out
        // except its final loop exit.
        let serial = rows
            .iter()
            .find(|(l, _, _)| l == &parshard_label("deep_unroll", 4))
            .expect("deep-unroll row present");
        assert!(serial.2.subtrees_spawned <= 1, "{:?}", serial.2);
        let doc = to_json("fixpoint_sweep", &[], &[], &[], &rows);
        assert_eq!(
            label_float_in_json(&doc, &branchy.0, "par_subtrees_spawned"),
            Some(branchy.2.subtrees_spawned as f64)
        );
        assert_eq!(label_float_in_json(&doc, &branchy.0, "par_ms"), Some(1.5));
        // The par_ prefix keeps the scheduling-dependent counters out of
        // the guard's deterministic sweep totals.
        assert_eq!(total_field_in_json(&doc, "subtrees_spawned"), None);
        assert_eq!(total_field_in_json(&doc, "steals"), None);
        assert_eq!(total_field_in_json(&doc, "visits"), None);
    }

    #[test]
    fn pruning_workload_prunes_under_path_sensitivity() {
        let stats = collect_stats();
        let pruned_on_two_back_edge: u64 = stats
            .iter()
            .filter(|(label, _)| label.starts_with("path/two_back_edge"))
            .map(|(_, s)| s.states_pruned)
            .sum();
        assert!(pruned_on_two_back_edge > 0, "two-back-edge suite prunes");
    }
}
