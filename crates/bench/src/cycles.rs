//! Cycle counting via the RDTSC time-stamp counter, matching the paper's
//! measurement methodology (§IV-B). Falls back to a nanosecond clock on
//! non-x86 targets.

/// Reads the time-stamp counter.
///
/// On x86-64 this is the RDTSC instruction the paper used; elsewhere it
/// is a monotonic nanosecond count (same comparison validity, different
/// unit).
#[must_use]
#[inline]
#[allow(unsafe_code)] // the sole unsafe in the workspace: the TSC intrinsic
pub fn rdtsc() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: _rdtsc has no memory-safety preconditions; it reads the TSC.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        use std::time::Instant;
        static START: OnceLock<Instant> = OnceLock::new();
        START.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Measures the minimum cycle count of `f` across `trials` runs —
/// the paper's "minimum number of cycles across these trials".
#[must_use]
pub fn min_cycles<R>(trials: u32, mut f: impl FnMut() -> R) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..trials {
        let start = rdtsc();
        let out = f();
        let end = rdtsc();
        std::hint::black_box(out);
        best = best.min(end.saturating_sub(start));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdtsc_is_monotonic_enough() {
        let a = rdtsc();
        let mut x = 1u64;
        for i in 1..1000u64 {
            x = x.wrapping_mul(i) ^ i;
        }
        std::hint::black_box(x);
        let b = rdtsc();
        assert!(b >= a, "TSC went backwards: {a} -> {b}");
    }

    #[test]
    fn min_cycles_returns_finite_value() {
        let c = min_cycles(5, || std::hint::black_box(3u64).wrapping_mul(7));
        assert!(c < u64::MAX);
    }
}
