//! Shared utilities for the experiment binaries: cycle counting (RDTSC,
//! as in §IV-B of the paper), a minimal flag parser, and table printing.

#![warn(missing_docs)]

pub mod cli;
pub mod cycles;
pub mod table;
