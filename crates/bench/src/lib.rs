//! Shared utilities for the experiment binaries: cycle counting (RDTSC,
//! as in §IV-B of the paper), a minimal flag parser, table printing, and
//! a self-contained microbenchmark harness.

// `cycles::rdtsc` needs one `unsafe` intrinsic call on x86-64; everything
// else in the crate is forbidden from using unsafe via the deny +
// narrowly-scoped allow below.
#![deny(unsafe_code)]
#![warn(missing_docs)]
// Kernel-faithful operator names (`add` mirrors `tnum_add`) and explicit
// BPF division semantics (`x / 0 = 0`) are intentional throughout.
#![allow(clippy::should_implement_trait)]

pub mod cli;
pub mod cycles;
pub mod fixpoint_suite;
pub mod harness;
pub mod table;
