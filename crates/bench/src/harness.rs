//! A tiny self-contained microbenchmark harness (the workspace is
//! dependency-free, so this stands in for criterion).
//!
//! Methodology: each benchmark closure is warmed up, then timed over
//! adaptive batches until the measurement window is filled; the harness
//! reports mean ns/iter over the best half of the batches (discarding
//! scheduler noise, in the spirit of the paper's min-of-trials cycle
//! methodology, §IV-B).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A benchmark group: runs closures and renders a table of results.
pub struct Group {
    name: String,
    warmup: Duration,
    window: Duration,
    rows: Vec<(String, f64)>,
}

impl Group {
    /// Creates a group with the default windows (0.2 s warmup, 0.5 s
    /// measurement — tuned to keep the whole workspace bench run under a
    /// minute on a small container).
    #[must_use]
    pub fn new(name: &str) -> Group {
        Group {
            name: name.to_string(),
            warmup: Duration::from_millis(200),
            window: Duration::from_millis(500),
            rows: Vec::new(),
        }
    }

    /// Overrides the measurement window.
    #[must_use]
    pub fn window(mut self, warmup: Duration, measure: Duration) -> Group {
        self.warmup = warmup;
        self.window = measure;
        self
    }

    /// Times `f` and records a row. The closure's result is passed
    /// through [`black_box`] so the work cannot be optimized away.
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) {
        // Warm up and estimate the per-call cost.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            calls += 1;
        }
        let per_call = self.warmup.as_secs_f64() / calls.max(1) as f64;
        // Pick a batch size of roughly 1 ms per batch.
        let batch = ((0.001 / per_call) as u64).clamp(1, 1 << 24);
        let mut samples: Vec<f64> = Vec::new();
        let run_start = Instant::now();
        while run_start.elapsed() < self.window {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        // Mean of the best half: robust against preemption spikes.
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in timings"));
        let half = &samples[..(samples.len() / 2).max(1)];
        let mean_ns = half.iter().sum::<f64>() / half.len() as f64 * 1e9;
        self.rows.push((label.to_string(), mean_ns));
    }

    /// The measured `(label, ns_per_iter)` rows so far, in bench order —
    /// for benches that assemble their own JSON document (e.g. the
    /// fixpoint sweep, which interleaves timing rows with analyzer
    /// statistics).
    #[must_use]
    pub fn rows(&self) -> &[(String, f64)] {
        &self.rows
    }

    /// Serializes the group as a small JSON document —
    /// `{"group": name, "results": [{"label": …, "ns_per_iter": …}]}` —
    /// for machine-readable baselines (`BENCH_PR*.json`). Hand-rolled:
    /// the workspace is dependency-free.
    #[must_use]
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|(label, ns)| {
                format!(
                    "    {{\"label\": \"{}\", \"ns_per_iter\": {ns:.1}}}",
                    escape_json(label)
                )
            })
            .collect();
        format!(
            "{{\n  \"group\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
            escape_json(&self.name),
            rows.join(",\n")
        )
    }

    /// Renders the group as a table, with throughput ratios against the
    /// fastest row.
    pub fn finish(self) {
        println!("\n## {}\n", self.name);
        let best = self
            .rows
            .iter()
            .map(|(_, ns)| *ns)
            .fold(f64::INFINITY, f64::min);
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(label, ns)| {
                vec![
                    label.clone(),
                    format!("{ns:.1}"),
                    format!("{:.2}x", ns / best),
                ]
            })
            .collect();
        println!(
            "{}",
            crate::table::render(&["benchmark", "ns/iter", "vs best"], &rows)
        );
    }
}

/// Minimal RFC 8259 string escaping: quotes, backslashes, and control
/// characters.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_labels_are_escaped() {
        assert_eq!(escape_json(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_json("tab\there"), "tab\\u0009here");
    }

    #[test]
    fn measures_something_positive() {
        let mut g = Group::new("smoke").window(Duration::from_millis(5), Duration::from_millis(10));
        g.bench("add", || std::hint::black_box(1u64).wrapping_add(2));
        assert_eq!(g.rows.len(), 1);
        assert!(g.rows[0].1 > 0.0);
        g.finish();
    }
}
