//! A tiny `--flag value` parser for the experiment binaries (keeps the
//! workspace dependency-free beyond the approved list).

use std::collections::HashMap;

/// Parsed command-line flags: `--name value` pairs and bare `--switch`es.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses the process arguments (skipping the binary name).
    ///
    /// # Panics
    ///
    /// Panics with a usage hint when a non-flag token is encountered.
    #[must_use]
    pub fn parse() -> Args {
        Args::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit token list (testable entry point).
    ///
    /// # Panics
    ///
    /// Panics when a token does not start with `--`.
    #[must_use]
    pub fn from_iter<I: IntoIterator<Item = String>>(tokens: I) -> Args {
        let mut args = Args::default();
        let mut iter = tokens.into_iter().peekable();
        while let Some(tok) = iter.next() {
            let name = tok
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("unexpected argument {tok:?}; flags are --name [value]"))
                .to_string();
            match iter.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = iter.next().expect("peeked");
                    args.values.insert(name, value);
                }
                _ => args.switches.push(name),
            }
        }
        args
    }

    /// Integer flag with default.
    ///
    /// # Panics
    ///
    /// Panics when the value does not parse as the requested type.
    #[must_use]
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.values
            .get(name)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{name} expects an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// String flag, if present.
    #[must_use]
    pub fn get_str(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Boolean switch.
    #[must_use]
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(tokens: &[&str]) -> Args {
        Args::from_iter(tokens.iter().map(|s| (*s).to_string()))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = args(&["--pairs", "1000", "--full", "--width", "8"]);
        assert_eq!(a.get_u64("pairs", 5), 1000);
        assert_eq!(a.get_u64("width", 6), 8);
        assert_eq!(a.get_u64("missing", 7), 7);
        assert!(a.has("full"));
        assert!(!a.has("naive"));
    }

    #[test]
    #[should_panic(expected = "expects an integer")]
    fn rejects_bad_integers() {
        let a = args(&["--pairs", "many"]);
        let _ = a.get_u64("pairs", 0);
    }

    #[test]
    #[should_panic(expected = "unexpected argument")]
    fn rejects_positional() {
        let _ = args(&["positional"]);
    }
}
