//! Plain-text table rendering for experiment output.

/// Renders rows as a fixed-width text table with a header row and a
/// separator, column widths fitted to content.
///
/// # Examples
///
/// ```
/// use bench::table::render;
/// let out = render(
///     &["op", "cycles"],
///     &[vec!["our_mul".into(), "262".into()], vec!["kern_mul".into(), "393".into()]],
/// );
/// assert!(out.contains("our_mul"));
/// assert!(out.lines().count() >= 4);
/// ```
#[must_use]
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>w$}", w = w));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Formats a fraction as a percentage with three decimals (Table I style).
#[must_use]
pub fn pct(part: u64, total: u64) -> String {
    if total == 0 {
        "0.000%".to_string()
    } else {
        format!("{:.3}%", part as f64 / total as f64 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let out = render(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(1, 8), "12.500%");
        assert_eq!(pct(0, 0), "0.000%");
        assert_eq!(pct(59041, 59049), "99.986%");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let _ = render(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
