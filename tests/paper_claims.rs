//! The paper's headline claims, as executable assertions. Each test cites
//! the section it reproduces; together these are the "does the shape of
//! the paper hold" regression suite (see EXPERIMENTS.md).

use bitwise_domain::{bitwise_mul, ripple_add, ripple_sub};
use tnum::enumerate::tnums;
use tnum::Tnum;
use tnum_verify::ops::OpCatalog;
use tnum_verify::{
    check_optimality, check_soundness, compare_precision_unordered, ratio_histogram, spot_check,
};

#[test]
fn claim_add_sub_sound_and_optimal() {
    // §III-B Theorem 6 / §VII-C Theorem 22, verified exhaustively at
    // width 5 and randomly at width 64.
    for op in [OpCatalog::<Tnum>::add(), OpCatalog::<Tnum>::sub()] {
        assert!(check_soundness(op, 5).is_sound());
        assert!(check_optimality(op, 5).is_optimal());
        assert!(spot_check(op, 5_000, 8, 1).is_sound());
    }
}

#[test]
fn claim_our_mul_sound_but_not_optimal() {
    // §III-C: our_mul is provably sound; "While our_mul is sound, it is
    // not optimal."
    let op = OpCatalog::<Tnum>::mul();
    assert!(check_soundness(op, 5).is_sound());
    assert!(spot_check(op, 5_000, 8, 2).is_sound());
    let opt = check_optimality(op, 5);
    assert!(!opt.is_optimal());
    assert_eq!(opt.unsound_pairs, 0);
}

#[test]
fn claim_kernel_ops_sound_at_bounded_width() {
    // §III-A: "We were able to prove the soundness of the kernel's
    // abstract addition, subtraction, and all other bitwise operators" —
    // and of kern_mul at width 8 (our exhaustive budget keeps width 5
    // for the test suite; the verify_soundness binary goes to 8).
    for op in OpCatalog::<Tnum>::paper_suite() {
        assert!(check_soundness(op, 5).is_sound(), "{} unsound", op.name);
    }
}

#[test]
fn claim_table1_rows_5_and_6_exact() {
    // §VII-E Table I, exact integer agreement with the paper.
    let r5 =
        compare_precision_unordered(OpCatalog::<Tnum>::mul_kernel(), OpCatalog::<Tnum>::mul(), 5);
    assert_eq!(
        (
            r5.different,
            r5.comparable,
            r5.a_more_precise,
            r5.b_more_precise
        ),
        (8, 8, 2, 6)
    );
    let r6 =
        compare_precision_unordered(OpCatalog::<Tnum>::mul_kernel(), OpCatalog::<Tnum>::mul(), 6);
    assert_eq!(
        (
            r6.different,
            r6.comparable,
            r6.a_more_precise,
            r6.b_more_precise
        ),
        (180, 180, 41, 139)
    );
    // Trend (1): the fraction of equal outputs decreases with width.
    let eq5 = r5.equal as f64 / r5.total as f64;
    let eq6 = r6.equal as f64 / r6.total as f64;
    assert!(eq6 < eq5);
    // Trend (2): our_mul wins a growing share of comparable differences.
    let win5 = r5.b_more_precise as f64 / r5.comparable as f64;
    let win6 = r6.b_more_precise as f64 / r6.comparable as f64;
    assert!(win6 > win5);
}

#[test]
fn claim_fig4_our_mul_more_precise_in_majority() {
    // §IV-A: "for around 80% of the cases, our_mul produces a more
    // precise tnum than both kern_mul and bitwise_mul". Checked at width
    // 6 in the suite (width 8 in the fig4 binary): the share must clearly
    // exceed one half and approach the paper's figure.
    for (name, other) in [
        ("kern", OpCatalog::<Tnum>::mul_kernel()),
        ("bitwise", OpCatalog::<Tnum>::mul_bitwise()),
    ] {
        let hist = ratio_histogram(other, OpCatalog::<Tnum>::mul(), 6);
        let total: u64 = hist.values().sum();
        let ours_better: u64 = hist.iter().filter(|(k, _)| **k > 0).map(|(_, v)| *v).sum();
        let share = ours_better as f64 / total as f64;
        assert!(share > 0.7, "{name}: our_mul better in only {share:.2}");
    }
}

#[test]
fn claim_incomparable_outputs_exist_at_width_9() {
    // §IV-A: the worked width-9 example where kern_mul and our_mul
    // produce incomparable tnums.
    let p: Tnum = "000000011".parse().unwrap();
    let q: Tnum = "011x011xx".parse().unwrap();
    let kern = p.mul_kernel_legacy(q).truncate(9);
    let ours = p.mul(q).truncate(9);
    assert_eq!(kern.to_bin_string(9), "xxxx0xxxx");
    assert_eq!(ours.to_bin_string(9), "0xxxxxxxx");
    assert!(!kern.is_comparable_to(ours));
}

#[test]
fn claim_outputs_always_comparable_at_width_8_and_below() {
    // §IV-A: "empirically, for tnums of width n = 8, outputs R1 and R2
    // turn out to be always comparable" — Table I shows 100% comparable
    // for widths 5-8. Width 6 keeps the test fast; rows 5/6 are asserted
    // exactly above and width 8 in the table1 binary.
    let r =
        compare_precision_unordered(OpCatalog::<Tnum>::mul_kernel(), OpCatalog::<Tnum>::mul(), 6);
    assert_eq!(r.comparable, r.different);
}

#[test]
fn claim_mul_variants_agree_with_listings() {
    // Lemma 11: our_mul == our_mul_simplified, exhaustively at width 5.
    for a in tnums(5) {
        for b in tnums(5) {
            assert_eq!(a.mul(b), tnum::mul::our_mul_simplified(a, b));
        }
    }
}

#[test]
fn claim_ripple_baselines_match_kernel_results() {
    // §II: the Regehr–Duongsaa operators are sound; with set-wise carries
    // they coincide with the optimal kernel add/sub — the paper's
    // complaint is their O(n) cost, which benches/arith.rs measures.
    for a in tnums(4) {
        for b in tnums(4) {
            assert_eq!(ripple_add(a, b), a.add(b));
            assert_eq!(ripple_sub(a, b), a.sub(b));
        }
    }
}

#[test]
fn claim_fig2_and_fig3_worked_examples() {
    // Fig. 2: 10x0 + 10x1 = 10xx1 with γ = {17, 19, 21, 23}.
    let sum = "10x0".parse::<Tnum>().unwrap().add("10x1".parse().unwrap());
    assert_eq!(sum.to_bin_string(5), "10xx1");
    assert_eq!(sum.concretize().collect::<Vec<_>>(), vec![17, 19, 21, 23]);
    // Fig. 3: x01 * x10 = xxx10 with γ = {2, 6, ..., 30}.
    let prod = "x01".parse::<Tnum>().unwrap().mul("x10".parse().unwrap());
    assert_eq!(prod.to_bin_string(5), "xxx10");
    assert_eq!(
        prod.concretize().collect::<Vec<_>>(),
        vec![2, 6, 10, 14, 18, 22, 26, 30]
    );
}

#[test]
fn claim_bitwise_mul_agrees_between_fast_and_naive() {
    // §IV: the machine-arithmetic optimization of bitwise_mul is purely a
    // speedup; outputs are identical.
    for a in tnums(4) {
        for b in tnums(4) {
            assert_eq!(bitwise_mul(a, b), bitwise_domain::bitwise_mul_naive(a, b));
        }
    }
}

#[test]
fn claim_only_3_pow_n_wellformed() {
    // §II-B: "only 3^n among the 2^2n n-bit (v,m) bit patterns correspond
    // to well-formed tnums".
    for n in 0..=6u32 {
        let wellformed = (0..1u64 << n)
            .flat_map(|v| (0..1u64 << n).map(move |m| (v, m)))
            .filter(|&(v, m)| v & m == 0)
            .count() as u64;
        assert_eq!(wellformed, 3u64.pow(n));
    }
}
