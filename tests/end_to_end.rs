//! Cross-crate integration: programs that pass the verifier must execute
//! safely on the concrete VM, and the abstract states must contain every
//! concrete state along the way.

use ebpf::asm::assemble;
use ebpf::{Reg, Vm};
use verifier::{Analyzer, AnalyzerOptions, RegValue};

/// Checks the fundamental soundness contract of abstract interpretation
/// on one traced execution: at every step, every register the analyzer
/// tracks as a scalar must contain the concrete value.
fn assert_trace_contained(src: &str, ctx: &mut [u8]) -> u64 {
    let prog = assemble(src).expect("assembles");
    let analysis = Analyzer::new(AnalyzerOptions {
        ctx_size: ctx.len() as u64,
        ..AnalyzerOptions::default()
    })
    .analyze(&prog)
    .expect("verifies");
    let (ret, trace) = Vm::new().run_traced(&prog, ctx).expect("executes");
    for snap in &trace {
        let Some(state) = analysis.state_before(snap.pc) else {
            panic!("executed supposedly unreachable instruction {}", snap.pc);
        };
        for reg in Reg::ALL {
            if let RegValue::Scalar(s) = state.reg(reg) {
                assert!(
                    s.contains(snap.regs[reg.index()]),
                    "pc {}: concrete {reg} = {:#x} escapes abstract {s:?}",
                    snap.pc,
                    snap.regs[reg.index()],
                );
            }
        }
    }
    ret
}

#[test]
fn masked_table_index_program() {
    for byte in 0u8..=255 {
        let mut ctx = [byte, 1, 2, 3];
        let ret = assert_trace_contained(
            r"
                r2 = *(u8 *)(r1 + 0)
                r2 &= 7
                r3 = r10
                r3 += -8
                r3 += r2
                *(u8 *)(r3 + 0) = 1
                r0 = r2
                exit
            ",
            &mut ctx,
        );
        assert_eq!(ret, u64::from(byte & 7));
    }
}

#[test]
fn branchy_arith_program() {
    for byte in [0u8, 1, 7, 8, 100, 255] {
        let mut ctx = [byte; 8];
        let ret = assert_trace_contained(
            r"
                r2 = *(u8 *)(r1 + 0)
                r3 = r2
                r3 *= 3
                if r3 > 300 goto big
                r0 = r3
                r0 += 1
                exit
            big:
                r0 = 300
                exit
            ",
            &mut ctx,
        );
        let expect = if u64::from(byte) * 3 > 300 {
            300
        } else {
            u64::from(byte) * 3 + 1
        };
        assert_eq!(ret, expect);
    }
}

#[test]
fn spill_and_restore_program() {
    let mut ctx = [9u8, 0, 0, 0];
    let ret = assert_trace_contained(
        r"
            r2 = *(u8 *)(r1 + 0)
            *(u64 *)(r10 - 8) = r2
            r3 = 0
            r3 = *(u64 *)(r10 - 8)
            r0 = r3
            r0 *= r3
            exit
        ",
        &mut ctx,
    );
    assert_eq!(ret, 81);
}

#[test]
fn alu32_and_shift_program() {
    for byte in [0u8, 3, 31, 200] {
        let mut ctx = [byte, 0, 0, 0];
        let ret = assert_trace_contained(
            r"
                r2 = *(u8 *)(r1 + 0)
                w3 = w2
                w3 *= 41
                r4 = r2
                r4 &= 3
                r5 = 1
                r5 <<= r4
                r0 = r3
                r0 += r5
                exit
            ",
            &mut ctx,
        );
        let expect = u64::from(u32::from(byte).wrapping_mul(41)) + (1u64 << (byte & 3));
        assert_eq!(ret, expect);
    }
}

#[test]
fn bounded_loop_filter_program() {
    // A counted filter loop: sum the first 8 packet bytes through a
    // stack staging buffer, with the loop bounded by its own exit test —
    // the workload class the fixpoint engine opens up.
    for fill in [0u8, 1, 77, 255] {
        let mut ctx = [fill; 8];
        let ret = assert_trace_contained(
            r"
                r6 = 0              ; i
                r7 = 0              ; sum
            loop:
                r3 = r1
                r3 += r6
                r2 = *(u8 *)(r3 + 0)
                r4 = r10
                r4 += -8
                r4 += r6
                *(u8 *)(r4 + 0) = r2
                r5 = *(u8 *)(r4 + 0)
                r7 += r5
                r6 += 1
                if r6 < 8 goto loop
                r0 = r7
                exit
            ",
            &mut ctx,
        );
        assert_eq!(ret, u64::from(fill) * 8);
    }
}

#[test]
fn every_verified_program_runs_without_fault() {
    // A corpus of accepted programs: acceptance must imply fault-free
    // concrete execution on arbitrary contexts (the verifier's whole job).
    let corpus = [
        "r0 = 0\nexit",
        "r2 = *(u8 *)(r1 + 0)\nr2 &= 62\nr3 = r1\nr3 += r2\nr0 = *(u8 *)(r3 + 0)\nexit",
        "r2 = *(u8 *)(r1 + 0)\nif r2 s> 100 goto +2\nr0 = 1\nexit\nr0 = 2\nexit",
        "*(u64 *)(r10 - 8) = 1\n*(u64 *)(r10 - 16) = 2\nr0 = *(u64 *)(r10 - 16)\nexit",
        "r2 = *(u8 *)(r1 + 0)\nr2 %= 8\nr3 = r10\nr3 -= 8\nr3 += r2\nr0 = 0\nexit",
    ];
    let analyzer = Analyzer::new(AnalyzerOptions {
        ctx_size: 64,
        ..AnalyzerOptions::default()
    });
    let mut vm = Vm::new();
    for src in corpus {
        let prog = assemble(src).unwrap();
        analyzer
            .analyze(&prog)
            .unwrap_or_else(|e| panic!("rejected {src:?}: {e}"));
        for fill in [0u8, 1, 63, 255] {
            let mut ctx = [fill; 64];
            vm.run(&prog, &mut ctx)
                .unwrap_or_else(|e| panic!("verified program faulted ({src:?}, fill {fill}): {e}"));
        }
    }
}

#[test]
fn rejected_programs_do_fault_concretely() {
    // The complement sanity check: programs the verifier rejects for
    // memory safety really can fault when run unchecked.
    let src = r"
        r2 = *(u8 *)(r1 + 0)
        r3 = r10
        r3 -= 8
        r3 += r2          ; unbounded index
        r0 = *(u8 *)(r3 + 0)
        exit
    ";
    let prog = assemble(src).unwrap();
    assert!(Analyzer::new(AnalyzerOptions::default())
        .analyze(&prog)
        .is_err());
    // With a large enough byte the unchecked VM access goes out of bounds.
    let mut ctx = [200u8; 4];
    assert!(Vm::new().run(&prog, &mut ctx).is_err());
}

#[test]
fn strict_alignment_end_to_end() {
    let src = r"
        r2 = *(u8 *)(r1 + 0)
        r2 &= 56           ; multiples of 8 up to 56
        r3 = r10
        r3 += -64
        r3 += r2
        *(u64 *)(r3 + 0) = 7
        r0 = 0
        exit
    ";
    let prog = assemble(src).unwrap();
    let strict = AnalyzerOptions {
        strict_alignment: true,
        ..AnalyzerOptions::default()
    };
    Analyzer::new(strict)
        .analyze(&prog)
        .expect("8-aligned access accepted strictly");
    for byte in 0u8..=255 {
        let mut ctx = [byte, 0, 0, 0];
        Vm::new().run(&prog, &mut ctx).expect("runs");
    }
}
