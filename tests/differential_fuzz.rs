//! Differential fuzzing: random straight-line ALU programs are (a) always
//! accepted by the verifier (scalars only, no memory), (b) executed on the
//! concrete VM, and (c) checked for per-step abstract containment.
//!
//! This exercises the *entire* transfer-function stack — every tnum
//! operator, every interval transfer, the reduced-product sync — against
//! the concrete BPF semantics, the strongest soundness evidence the test
//! suite produces.

use domain::rng::SplitMix64;
use ebpf::{AluOp, Insn, Program, Reg, Src, Vm, Width};
use verifier::{Analyzer, AnalyzerOptions, RegValue};

/// Generates a random straight-line ALU program over r0-r5.
///
/// r0..r5 are first seeded with constants so every register is
/// initialized; then `len` random ALU instructions follow.
fn random_alu_program(rng: &mut SplitMix64, len: usize) -> Program {
    let regs = [Reg::R0, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7];
    let mut insns: Vec<Insn> = Vec::new();
    for (i, &r) in regs.iter().enumerate() {
        insns.push(Insn::Alu {
            width: Width::W64,
            op: AluOp::Mov,
            dst: r,
            src: Src::Imm(rng.next_i32() >> (i * 4)),
        });
    }
    let ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Mod,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Lsh,
        AluOp::Rsh,
        AluOp::Arsh,
        AluOp::Neg,
        AluOp::Mov,
    ];
    for _ in 0..len {
        let op = ops[rng.below(ops.len() as u64) as usize];
        let width = if rng.ratio(3, 10) {
            Width::W32
        } else {
            Width::W64
        };
        let dst = regs[rng.below(regs.len() as u64) as usize];
        let src = if op == AluOp::Neg {
            // Canonical no-operand form.
            Src::Imm(0)
        } else if rng.coin() {
            Src::Reg(regs[rng.below(regs.len() as u64) as usize])
        } else if matches!(op, AluOp::Lsh | AluOp::Rsh | AluOp::Arsh) {
            // Keep immediate shift amounts in range; register amounts are
            // masked by the semantics.
            Src::Imm(rng.below(if width == Width::W32 { 32 } else { 64 }) as i32)
        } else {
            Src::Imm(rng.next_i32())
        };
        insns.push(Insn::Alu {
            width,
            op,
            dst,
            src,
        });
    }
    insns.push(Insn::Exit);
    Program::new(insns).expect("straight-line ALU programs always validate")
}

#[test]
fn random_alu_programs_abstract_containment() {
    let mut rng = SplitMix64::new(0xBEEF);
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    let mut vm = Vm::new();
    for round in 0..200 {
        let prog = random_alu_program(&mut rng, 30);
        let analysis = analyzer
            .analyze(&prog)
            .unwrap_or_else(|e| panic!("round {round}: ALU program rejected: {e}"));
        let mut ctx = [0u8; 8];
        let (_, trace) = vm
            .run_traced(&prog, &mut ctx)
            .expect("ALU programs cannot fault");
        for snap in &trace {
            let state = analysis.state_before(snap.pc).expect("reachable");
            for reg in Reg::ALL {
                if let RegValue::Scalar(s) = state.reg(reg) {
                    assert!(
                        s.contains(snap.regs[reg.index()]),
                        "round {round} pc {}: {reg} = {:#x} escapes {s:?}\nprogram:\n{}",
                        snap.pc,
                        snap.regs[reg.index()],
                        prog.disassemble(),
                    );
                }
            }
        }
    }
}

#[test]
fn random_alu_programs_with_branches() {
    // Add forward conditional branches (still loop-free): exercises branch
    // refinement soundness against concrete control flow.
    let mut rng = SplitMix64::new(0xFACE);
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    let mut vm = Vm::new();
    for round in 0..100 {
        let base = random_alu_program(&mut rng, 12);
        // Splice a conditional jump over a random prefix-safe distance.
        let mut insns: Vec<Insn> = base.insns().to_vec();
        let at = rng.range(6, (insns.len() - 1) as u64) as usize;
        let skip = rng.below((insns.len() - 1 - at) as u64) as i16;
        let cmp_ops = [
            ebpf::JmpOp::Eq,
            ebpf::JmpOp::Ne,
            ebpf::JmpOp::Lt,
            ebpf::JmpOp::Ge,
            ebpf::JmpOp::Sgt,
            ebpf::JmpOp::Sle,
            ebpf::JmpOp::Set,
        ];
        insns.insert(
            at,
            Insn::Jmp {
                width: Width::W64,
                op: cmp_ops[rng.below(cmp_ops.len() as u64) as usize],
                dst: Reg::R3,
                src: if rng.coin() {
                    Src::Reg(Reg::R4)
                } else {
                    Src::Imm(rng.next_i32())
                },
                off: skip,
            },
        );
        let Ok(prog) = Program::new(insns) else {
            continue;
        };
        let analysis = analyzer
            .analyze(&prog)
            .unwrap_or_else(|e| panic!("round {round}: rejected: {e}\n{}", prog.disassemble()));
        let mut ctx = [0u8; 8];
        let (_, trace) = vm.run_traced(&prog, &mut ctx).expect("cannot fault");
        for snap in &trace {
            let state = analysis
                .state_before(snap.pc)
                .unwrap_or_else(|| panic!("round {round}: executed unreachable pc {}", snap.pc));
            for reg in Reg::ALL {
                if let RegValue::Scalar(s) = state.reg(reg) {
                    assert!(
                        s.contains(snap.regs[reg.index()]),
                        "round {round} pc {}: {reg} escapes\n{}",
                        snap.pc,
                        prog.disassemble(),
                    );
                }
            }
        }
    }
}

#[test]
fn byte_round_trip_of_random_programs() {
    let mut rng = SplitMix64::new(0xD15C);
    for _ in 0..100 {
        let prog = random_alu_program(&mut rng, 20);
        let bytes = prog.to_bytes();
        let back = Program::from_bytes(&bytes).expect("round trip decodes");
        assert_eq!(back, prog);
        // Disassembly round-trips too.
        let text = prog.disassemble();
        let reasm = ebpf::asm::assemble(&text).expect("disassembly reassembles");
        assert_eq!(reasm, prog);
    }
}
