//! Differential fuzzing: random straight-line ALU programs are (a) always
//! accepted by the verifier (scalars only, no memory), (b) executed on the
//! concrete VM, and (c) checked for per-step abstract containment.
//!
//! This exercises the *entire* transfer-function stack — every tnum
//! operator, every interval transfer, the reduced-product sync — against
//! the concrete BPF semantics, the strongest soundness evidence the test
//! suite produces.

use std::sync::Arc;

use domain::rng::SplitMix64;
use ebpf::{AluOp, Insn, Program, Reg, Src, Vm, Width};
use verifier::{
    Analyzer, AnalyzerOptions, Cfg, ProgramPasses, RegValue, Strategy, TransferMemo,
    VerificationSession,
};

/// The fuzzed register set: seeded with constants up front so every
/// random use reads an initialized register.
const FUZZ_REGS: [Reg; 6] = [Reg::R0, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7];

/// Seed instructions giving every fuzzed register a random constant.
fn seed_regs(rng: &mut SplitMix64) -> Vec<Insn> {
    FUZZ_REGS
        .iter()
        .enumerate()
        .map(|(i, &r)| Insn::Alu {
            width: Width::W64,
            op: AluOp::Mov,
            dst: r,
            src: Src::Imm(rng.next_i32() >> (i * 4)),
        })
        .collect()
}

/// One random ALU instruction over [`FUZZ_REGS`] — the shared body
/// generator of the straight-line and loopy fuzz suites.
fn random_alu_insn(rng: &mut SplitMix64) -> Insn {
    let ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Mod,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Lsh,
        AluOp::Rsh,
        AluOp::Arsh,
        AluOp::Neg,
        AluOp::Mov,
    ];
    let op = ops[rng.below(ops.len() as u64) as usize];
    let width = if rng.ratio(3, 10) {
        Width::W32
    } else {
        Width::W64
    };
    let dst = FUZZ_REGS[rng.below(FUZZ_REGS.len() as u64) as usize];
    let src = if op == AluOp::Neg {
        // Canonical no-operand form.
        Src::Imm(0)
    } else if rng.coin() {
        Src::Reg(FUZZ_REGS[rng.below(FUZZ_REGS.len() as u64) as usize])
    } else if matches!(op, AluOp::Lsh | AluOp::Rsh | AluOp::Arsh) {
        // Keep immediate shift amounts in range; register amounts are
        // masked by the semantics.
        Src::Imm(rng.below(if width == Width::W32 { 32 } else { 64 }) as i32)
    } else {
        Src::Imm(rng.next_i32())
    };
    Insn::Alu {
        width,
        op,
        dst,
        src,
    }
}

/// Generates a random straight-line ALU program: seeds, then `len`
/// random ALU instructions.
fn random_alu_program(rng: &mut SplitMix64, len: usize) -> Program {
    let mut insns = seed_regs(rng);
    for _ in 0..len {
        insns.push(random_alu_insn(rng));
    }
    insns.push(Insn::Exit);
    Program::new(insns).expect("straight-line ALU programs always validate")
}

#[test]
fn random_alu_programs_abstract_containment() {
    let mut rng = SplitMix64::new(0xBEEF);
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    let mut vm = Vm::new();
    for round in 0..200 {
        let prog = random_alu_program(&mut rng, 30);
        let analysis = analyzer
            .analyze(&prog)
            .unwrap_or_else(|e| panic!("round {round}: ALU program rejected: {e}"));
        let mut ctx = [0u8; 8];
        let (_, trace) = vm
            .run_traced(&prog, &mut ctx)
            .expect("ALU programs cannot fault");
        for snap in &trace {
            let state = analysis.state_before(snap.pc).expect("reachable");
            for reg in Reg::ALL {
                if let RegValue::Scalar(s) = state.reg(reg) {
                    assert!(
                        s.contains(snap.regs[reg.index()]),
                        "round {round} pc {}: {reg} = {:#x} escapes {s:?}\nprogram:\n{}",
                        snap.pc,
                        snap.regs[reg.index()],
                        prog.disassemble(),
                    );
                }
            }
        }
    }
}

#[test]
fn random_alu_programs_with_branches() {
    // Add forward conditional branches (still loop-free): exercises branch
    // refinement soundness against concrete control flow.
    let mut rng = SplitMix64::new(0xFACE);
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    let mut vm = Vm::new();
    for round in 0..100 {
        let base = random_alu_program(&mut rng, 12);
        // Splice a conditional jump over a random prefix-safe distance.
        let mut insns: Vec<Insn> = base.insns().to_vec();
        let at = rng.range(6, (insns.len() - 1) as u64) as usize;
        let skip = rng.below((insns.len() - 1 - at) as u64) as i16;
        let cmp_ops = [
            ebpf::JmpOp::Eq,
            ebpf::JmpOp::Ne,
            ebpf::JmpOp::Lt,
            ebpf::JmpOp::Ge,
            ebpf::JmpOp::Sgt,
            ebpf::JmpOp::Sle,
            ebpf::JmpOp::Set,
        ];
        insns.insert(
            at,
            Insn::Jmp {
                width: Width::W64,
                op: cmp_ops[rng.below(cmp_ops.len() as u64) as usize],
                dst: Reg::R3,
                src: if rng.coin() {
                    Src::Reg(Reg::R4)
                } else {
                    Src::Imm(rng.next_i32())
                },
                off: skip,
            },
        );
        let Ok(prog) = Program::new(insns) else {
            continue;
        };
        let analysis = analyzer
            .analyze(&prog)
            .unwrap_or_else(|e| panic!("round {round}: rejected: {e}\n{}", prog.disassemble()));
        let mut ctx = [0u8; 8];
        let (_, trace) = vm.run_traced(&prog, &mut ctx).expect("cannot fault");
        for snap in &trace {
            let state = analysis
                .state_before(snap.pc)
                .unwrap_or_else(|| panic!("round {round}: executed unreachable pc {}", snap.pc));
            for reg in Reg::ALL {
                if let RegValue::Scalar(s) = state.reg(reg) {
                    assert!(
                        s.contains(snap.regs[reg.index()]),
                        "round {round} pc {}: {reg} escapes\n{}",
                        snap.pc,
                        prog.disassemble(),
                    );
                }
            }
        }
    }
}

/// Generates a bounded-loop program: the counter `r8` starts at a masked
/// untrusted context byte, a random ALU body churns `r0`/`r3`–`r7` every
/// trip, and the back-edge condition `r8 < limit` bounds the loop — at
/// the given comparison `width` (32-bit guards exercise `refine32`).
///
/// All instructions are single-slot, so instruction indices double as
/// jump offsets.
fn random_loop_program_at(rng: &mut SplitMix64, body_len: usize, width: Width) -> Program {
    let mut insns: Vec<Insn> = vec![
        // r8 = ctx[0] & 7: the trip count depends on untrusted input.
        Insn::Load {
            size: ebpf::MemSize::B,
            dst: Reg::R8,
            base: Reg::R1,
            off: 0,
        },
        Insn::Alu {
            width: Width::W64,
            op: AluOp::And,
            dst: Reg::R8,
            src: Src::Imm(7),
        },
    ];
    insns.extend(seed_regs(rng));
    let head = insns.len();
    for _ in 0..body_len {
        insns.push(random_alu_insn(rng));
    }
    insns.push(Insn::Alu {
        width: Width::W64,
        op: AluOp::Add,
        dst: Reg::R8,
        src: Src::Imm(1),
    });
    // Trip counts from 1 (r8 masked to <= 7, limit 8) up to 24 — both
    // sides of the default widening delay.
    let limit = rng.range(8, 25) as i32;
    let jmp_index = insns.len();
    insns.push(Insn::Jmp {
        width,
        op: ebpf::JmpOp::Lt,
        dst: Reg::R8,
        src: Src::Imm(limit),
        off: (head as i64 - (jmp_index + 1) as i64) as i16,
    });
    insns.push(Insn::Exit);
    Program::new(insns).expect("loop programs validate")
}

/// Shared body of the 64-bit and 32-bit loop-fuzz suites: analyze, run
/// on the VM across random contexts, and assert per-step containment
/// plus exit-state containment of the concrete return value.
fn check_loop_containment(seed: u64, rounds: usize, width: Width) {
    let mut rng = SplitMix64::new(seed);
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    let mut vm = Vm::new();
    for round in 0..rounds {
        let prog = random_loop_program_at(&mut rng, 10, width);
        let analysis = analyzer
            .analyze(&prog)
            .unwrap_or_else(|e| panic!("round {round}: loop program rejected: {e}"));
        let exit_pc = prog.len() - 1;
        // SplitMix64-driven inputs vary the trip count through ctx[0].
        for _ in 0..6 {
            let mut ctx = [0u8; 8];
            for byte in &mut ctx {
                *byte = rng.next_u32() as u8;
            }
            let (ret, trace) = vm
                .run_traced(&prog, &mut ctx)
                .expect("ALU loop programs cannot fault");
            // Per-step containment across every trip…
            for snap in &trace {
                let state = analysis.state_before(snap.pc).expect("reachable");
                for reg in Reg::ALL {
                    if let RegValue::Scalar(s) = state.reg(reg) {
                        assert!(
                            s.contains(snap.regs[reg.index()]),
                            "round {round} pc {}: {reg} = {:#x} escapes {s:?}\nprogram:\n{}",
                            snap.pc,
                            snap.regs[reg.index()],
                            prog.disassemble(),
                        );
                    }
                }
            }
            // …and the concrete return value sits in the abstract exit
            // state.
            let exit_state = analysis.state_before(exit_pc).expect("exit reachable");
            let r0 = exit_state
                .reg(Reg::R0)
                .as_scalar()
                .expect("r0 is a scalar at exit");
            assert!(
                r0.contains(ret),
                "round {round}: final r0 = {ret:#x} escapes {r0:?}\nprogram:\n{}",
                prog.disassemble(),
            );
        }
    }
}

#[test]
fn random_loop_programs_abstract_containment() {
    check_loop_containment(0x100D, 60, Width::W64);
}

#[test]
fn random_w32_guarded_loop_programs_abstract_containment() {
    // The same bounded-loop workload guarded by `if w8 < limit`:
    // `refine32` must keep the counter bounded (and sound) through the
    // zero-extended sub-register compare.
    check_loop_containment(0x32B1, 60, Width::W32);
}

#[test]
fn w32_guarded_memset_verifies_and_matches_vm() {
    // A 13-byte memset whose exit test compares the *sub-register*:
    // before `refine32`, both edges of `if w1 < 13` passed through
    // unrefined and the counter widened past the buffer, rejecting a
    // program the concrete VM executes safely. Thresholds stay off so
    // the 32-bit refinement alone carries the proof.
    let prog = ebpf::asm::assemble(
        r"
            r1 = 0
        loop:
            r3 = r10
            r3 += -13
            r3 += r1
            *(u8 *)(r3 + 0) = 0
            r1 += 1
            if w1 < 13 goto loop
            r0 = r1
            exit
        ",
    )
    .unwrap();
    let analysis = Analyzer::new(AnalyzerOptions {
        harvest_thresholds: false,
        ..AnalyzerOptions::default()
    })
    .analyze(&prog)
    .expect("32-bit guard refines the counter");
    let (ret, _) = Vm::new()
        .run_traced(&prog, &mut [0u8; 8])
        .expect("verified program executes safely");
    assert_eq!(ret, 13);
    let exit_state = analysis.state_before(prog.len() - 1).unwrap();
    let r0 = exit_state.reg(Reg::R0).as_scalar().unwrap();
    assert!(r0.contains(ret));
}

#[test]
fn per_register_widening_keeps_counter_plus_accumulator_vs_vm() {
    // Regression for per-register widening stabilization: a continue-
    // style loop with two back-edges hands the head two changing joins
    // per trip (the accumulator differs on the two paths). The shared
    // per-head delay counter of PR 2 was burned twice per trip by the
    // accumulator and widened the counter mid-ascent — rejecting a
    // program the VM executes safely. Per-register counters charge the
    // counter only for its own 12 changing joins, inside the default
    // delay of 16.
    let prog = ebpf::asm::assemble(
        r"
            r1 = 0              ; i
            r6 = 0              ; sum
        loop:
            r3 = r10
            r3 += -13
            r3 += r1
            *(u8 *)(r3 + 0) = 0 ; in bounds iff i <= 12
            r1 += 1
            r6 += 1
            if r1 > 12 goto out
            if r2 > 0 goto loop ; back-edge 1
            r6 += 7
            goto loop           ; back-edge 2
        out:
            r0 = r1
            exit
        ",
    )
    .unwrap();
    let analysis = Analyzer::new(AnalyzerOptions {
        harvest_thresholds: false,
        ..AnalyzerOptions::default()
    })
    .analyze(&prog)
    .expect("per-register delay keeps the counter bound");
    // The acceptance is correct: the concrete VM runs it in bounds, and
    // the exit state contains the concrete result.
    let (ret, _) = Vm::new()
        .run_traced(&prog, &mut [0u8; 8])
        .expect("verified program executes safely");
    assert_eq!(ret, 13);
    let exit_state = analysis.state_before(prog.len() - 1).unwrap();
    let r0 = exit_state.reg(Reg::R0).as_scalar().unwrap();
    assert!(r0.contains(ret));
    assert_eq!(r0.as_constant(), Some(13), "narrowing pins the counter");
}

#[test]
fn delayed_widening_regression_vs_vm() {
    // The 13-trip memset: the interval bound i <= 12 is the whole safety
    // argument (the tnum can only offer [0, 15]). Eager widening (delay
    // 0) extrapolates the counter before the exit test caps it and must
    // reject; the default delayed engine accepts, and the acceptance is
    // *correct* — the concrete VM executes the program in bounds.
    let prog = ebpf::asm::assemble(
        r"
            r1 = 0
        loop:
            r3 = r10
            r3 += -13
            r3 += r1
            *(u8 *)(r3 + 0) = 0
            r1 += 1
            if r1 < 13 goto loop
            r0 = r1
            exit
        ",
    )
    .unwrap();
    let eager = Analyzer::new(AnalyzerOptions {
        widen_delay: 0,
        harvest_thresholds: false,
        ..AnalyzerOptions::default()
    });
    assert!(
        eager.analyze(&prog).is_err(),
        "eager widening without thresholds loses the bound"
    );
    // With harvested thresholds ("widening with thresholds"), the same
    // eager configuration lands the counter on the `i < 13` guard and
    // keeps the proof.
    let eager_with_thresholds = Analyzer::new(AnalyzerOptions {
        widen_delay: 0,
        ..AnalyzerOptions::default()
    });
    eager_with_thresholds
        .analyze(&prog)
        .expect("harvested thresholds recover the bound without delay");
    let analysis = Analyzer::new(AnalyzerOptions::default())
        .analyze(&prog)
        .expect("delayed widening keeps the bound");
    let (ret, _) = Vm::new()
        .run_traced(&prog, &mut [0u8; 8])
        .expect("verified program executes safely");
    assert_eq!(ret, 13);
    let exit_state = analysis.state_before(prog.len() - 1).unwrap();
    let r0 = exit_state.reg(Reg::R0).as_scalar().unwrap();
    assert!(r0.contains(ret), "concrete result inside the exit state");
    assert_eq!(r0.as_constant(), Some(13), "narrowing pins the counter");
}

/// One session per built-in strategy: `(widening fixpoint, path-sensitive)`.
fn both_strategies() -> (VerificationSession, VerificationSession) {
    (
        VerificationSession::new(),
        VerificationSession::new().with_strategy(Strategy::PathSensitive),
    )
}

#[test]
fn strategies_agree_on_loop_free_programs() {
    // Random loop-free programs — ALU churn, a spliced conditional
    // branch, and (two rounds in three) a store through a masked index,
    // whose mask decides the verdict: both strategies must agree on
    // accept/reject, and on acceptance the concrete VM execution must be
    // contained in *both* strategies' abstract states.
    let mut rng = SplitMix64::new(0x51AE);
    let (fixpoint, path) = both_strategies();
    let mut vm = Vm::new();
    let (mut accepts, mut rejects) = (0u32, 0u32);
    for round in 0..120 {
        let base = random_alu_program(&mut rng, 10);
        let mut insns: Vec<Insn> = base.insns().to_vec();
        // Drop the exit (re-appended below), then splice a conditional
        // jump over a prefix-safe distance, so the two paths reach the
        // store with differently refined registers.
        insns.pop();
        let at = rng.range(6, insns.len() as u64) as usize;
        let skip = rng.below((insns.len() - at) as u64) as i16;
        let cmp_ops = [
            ebpf::JmpOp::Eq,
            ebpf::JmpOp::Ne,
            ebpf::JmpOp::Lt,
            ebpf::JmpOp::Ge,
            ebpf::JmpOp::Sgt,
            ebpf::JmpOp::Sle,
        ];
        insns.insert(
            at,
            Insn::Jmp {
                width: Width::W64,
                op: cmp_ops[rng.below(cmp_ops.len() as u64) as usize],
                dst: Reg::R3,
                src: if rng.coin() {
                    Src::Reg(Reg::R4)
                } else {
                    Src::Imm(rng.next_i32())
                },
                off: skip,
            },
        );
        if rng.ratio(2, 3) {
            // Store to [r10 - 16 + (idx & mask)]: masks 7/15 keep the
            // byte store inside the 16-byte window (accept), 31/63
            // provably overrun it on some path (reject) — and a hull of
            // in-bounds path states is itself in bounds, so the joined
            // fixpoint view cannot disagree with the per-path one.
            let mask = [7i32, 15, 31, 63][rng.below(4) as usize];
            let idx = FUZZ_REGS[rng.below(FUZZ_REGS.len() as u64) as usize];
            insns.extend([
                Insn::Alu {
                    width: Width::W64,
                    op: AluOp::And,
                    dst: idx,
                    src: Src::Imm(mask),
                },
                Insn::Alu {
                    width: Width::W64,
                    op: AluOp::Mov,
                    dst: Reg::R9,
                    src: Src::Reg(Reg::R10),
                },
                Insn::Alu {
                    width: Width::W64,
                    op: AluOp::Add,
                    dst: Reg::R9,
                    src: Src::Imm(-16),
                },
                Insn::Alu {
                    width: Width::W64,
                    op: AluOp::Add,
                    dst: Reg::R9,
                    src: Src::Reg(idx),
                },
                Insn::Store {
                    size: ebpf::MemSize::B,
                    base: Reg::R9,
                    off: 0,
                    src: Src::Imm(0),
                },
            ]);
        }
        insns.push(Insn::Exit);
        let Ok(prog) = Program::new(insns) else {
            continue;
        };
        let by_fixpoint = fixpoint.run(&prog);
        let by_path = path.run(&prog);
        assert_eq!(
            by_fixpoint.is_ok(),
            by_path.is_ok(),
            "round {round}: verdicts disagree (fixpoint: {by_fixpoint:?}, \
             path: {by_path:?})\n{}",
            prog.disassemble(),
        );
        let (Ok(by_fixpoint), Ok(by_path)) = (by_fixpoint, by_path) else {
            rejects += 1;
            continue;
        };
        accepts += 1;
        let mut ctx = [0u8; 8];
        let (_, trace) = vm
            .run_traced(&prog, &mut ctx)
            .expect("accepted programs execute safely");
        for snap in &trace {
            for analysis in [&by_fixpoint, &by_path] {
                let state = analysis.state_before(snap.pc).expect("reachable");
                for reg in Reg::ALL {
                    if let RegValue::Scalar(s) = state.reg(reg) {
                        assert!(
                            s.contains(snap.regs[reg.index()]),
                            "round {round} pc {} ({:?}): {reg} escapes\n{}",
                            snap.pc,
                            analysis.strategy(),
                            prog.disassemble(),
                        );
                    }
                }
            }
        }
    }
    assert!(
        accepts > 10 && rejects > 10,
        "campaign must exercise both verdicts: {accepts} accepts, {rejects} rejects"
    );
}

#[test]
fn path_sensitive_never_less_precise_on_bounded_loops() {
    // The bounded-loop workload of `check_loop_containment`, run under
    // both strategies: the path-sensitive explorer must accept whatever
    // the fixpoint accepts, stay sound against the concrete VM (ground
    // truth), and report per-pc states *included in* the fixpoint's —
    // per-trip exploration is never less precise than the loop-head
    // join. Trip limits (<= 24) sit inside the default unroll_k (32), so
    // the run is pure unrolling: no widening at all.
    let mut rng = SplitMix64::new(0xC0DE);
    let (fixpoint, path) = both_strategies();
    let mut vm = Vm::new();
    for width in [Width::W64, Width::W32] {
        for round in 0..30 {
            let prog = random_loop_program_at(&mut rng, 10, width);
            let by_fixpoint = fixpoint
                .run(&prog)
                .unwrap_or_else(|e| panic!("round {round}: fixpoint rejected: {e}"));
            let by_path = path.run(&prog).unwrap_or_else(|e| {
                panic!("round {round}: path-sensitive rejected an accepted program: {e}")
            });
            assert_eq!(by_path.stats().widenings_applied, 0, "pure unrolling");
            for _ in 0..4 {
                let mut ctx = [0u8; 8];
                for byte in &mut ctx {
                    *byte = rng.next_u32() as u8;
                }
                let (ret, trace) = vm.run_traced(&prog, &mut ctx).expect("cannot fault");
                for snap in &trace {
                    let ps = by_path.state_before(snap.pc).expect("reachable");
                    let fp = by_fixpoint.state_before(snap.pc).expect("reachable");
                    // Ground truth: the concrete step is inside the
                    // path-sensitive state…
                    for reg in Reg::ALL {
                        if let RegValue::Scalar(s) = ps.reg(reg) {
                            assert!(
                                s.contains(snap.regs[reg.index()]),
                                "round {round} pc {}: {reg} escapes path state\n{}",
                                snap.pc,
                                prog.disassemble(),
                            );
                        }
                    }
                    // …and the path-sensitive state is inside the
                    // fixpoint's (strictly more precise or equal).
                    assert!(
                        ps.is_subset_of(fp),
                        "round {round} pc {}: path state not included in \
                         fixpoint state\n{}",
                        snap.pc,
                        prog.disassemble(),
                    );
                }
                let exit = by_path.state_before(prog.len() - 1).expect("reachable");
                let r0 = exit.reg(Reg::R0).as_scalar().expect("scalar at exit");
                assert!(r0.contains(ret), "round {round}: exit r0 escapes");
            }
        }
    }
}

/// A helper program over map 0 (key 4, value 8, 16 entries): build the
/// key (and value) regions on the stack, then run one of three shapes —
/// update-then-lookup (must hit and return the stored value),
/// lookup-only against a pre-seeded store (hit iff seeded), and
/// update-delete-lookup (must miss). Every shape NULL-checks the lookup.
fn helper_program(shape: usize, key: u32, value: u32) -> Program {
    let source = match shape {
        0 => format!(
            r"
            *(u32 *)(r10 - 4) = {key}
            *(u64 *)(r10 - 16) = {value}
            r1 = map 0
            r2 = r10
            r2 += -4
            r3 = r10
            r3 += -16
            r4 = 0
            call 2
            r1 = map 0
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto miss
            r6 = *(u64 *)(r0 + 0)
            r0 = r6
            exit
        miss:
            r0 = -1
            exit
        "
        ),
        1 => format!(
            r"
            *(u32 *)(r10 - 4) = {key}
            r1 = map 0
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto miss
            r6 = *(u64 *)(r0 + 0)
            r0 = r6
            exit
        miss:
            r0 = -1
            exit
        "
        ),
        _ => format!(
            r"
            *(u32 *)(r10 - 4) = {key}
            *(u64 *)(r10 - 16) = {value}
            r1 = map 0
            r2 = r10
            r2 += -4
            r3 = r10
            r3 += -16
            r4 = 0
            call 2
            r1 = map 0
            r2 = r10
            r2 += -4
            call 3
            r1 = map 0
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto miss
            r6 = *(u64 *)(r0 + 0)
            r0 = r6
            exit
        miss:
            r0 = -1
            exit
        "
        ),
    };
    ebpf::asm::assemble(&source).expect("helper programs assemble")
}

#[test]
fn helper_programs_differential_against_vm_map_store() {
    // The verifier's accept verdict on map-helper programs must be
    // backed by the VM *actually executing* the map semantics: updates
    // land, lookups hit exactly when a shadow model says they should,
    // deletes invalidate, and every scalar the trace produces is
    // contained in the abstract state at its pc (MapValuePtr registers
    // hold VM map-arena addresses and are deliberately not scalars).
    let mut rng = SplitMix64::new(0x3A95);
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    for round in 0..60 {
        let shape = round % 3;
        let key = rng.below(16) as u32;
        let value = rng.below(i32::MAX as u64) as u32;
        let prog = helper_program(shape, key, value);
        let analysis = analyzer
            .analyze(&prog)
            .unwrap_or_else(|e| panic!("round {round}: helper program rejected: {e}"));

        let mut vm = Vm::new();
        // Pre-seed the store for the lookup-only shape, mirrored in a
        // shadow model that decides the expected verdict.
        let mut shadow = std::collections::BTreeMap::new();
        if shape == 1 {
            for _ in 0..rng.below(8) {
                let k = rng.below(16) as u32;
                let v = u64::from(rng.next_u32());
                assert!(vm.maps_mut().update(0, &k.to_le_bytes(), &v.to_le_bytes()));
                shadow.insert(k, v);
            }
        }
        let mut ctx = [0u8; 8];
        let (ret, trace) = vm
            .run_traced(&prog, &mut ctx)
            .expect("verified helper programs execute safely");

        let expected = match shape {
            0 => u64::from(value),
            1 => shadow.get(&key).copied().unwrap_or((-1i64) as u64),
            _ => (-1i64) as u64,
        };
        assert_eq!(
            ret, expected,
            "round {round} shape {shape}: VM map semantics diverged \
             (key {key}, value {value})"
        );
        if shape == 0 {
            assert_eq!(
                vm.maps().get(0, &key.to_le_bytes()),
                Some(u64::from(value).to_le_bytes().as_slice()),
                "round {round}: update did not land in the store"
            );
        }

        for snap in &trace {
            let state = analysis.state_before(snap.pc).expect("reachable");
            for reg in Reg::ALL {
                if let RegValue::Scalar(s) = state.reg(reg) {
                    assert!(
                        s.contains(snap.regs[reg.index()]),
                        "round {round} pc {}: {reg} = {:#x} escapes {s:?}\nprogram:\n{}",
                        snap.pc,
                        snap.regs[reg.index()],
                        prog.disassemble(),
                    );
                }
            }
        }
    }
}

#[test]
fn helper_update_loop_populates_the_store() {
    // The map_update_loop fixture shape, end to end: after the verified
    // program runs, every key 0..8 must sit in map 0 with its trip
    // counter as the value — the loop's helper calls really executed.
    let prog = ebpf::asm::assemble(
        r"
        r6 = 0
    loop:
        *(u32 *)(r10 - 4) = r6
        *(u64 *)(r10 - 16) = r6
        r1 = map 0
        r2 = r10
        r2 += -4
        r3 = r10
        r3 += -16
        r4 = 0
        call 2
        r6 += 1
        if r6 < 8 goto loop
        r0 = 0
        exit
    ",
    )
    .unwrap();
    Analyzer::new(AnalyzerOptions::default())
        .analyze(&prog)
        .expect("update loop verifies");
    let mut vm = Vm::new();
    let (ret, _) = vm
        .run_traced(&prog, &mut [0u8; 8])
        .expect("verified program executes safely");
    assert_eq!(ret, 0);
    for k in 0u32..8 {
        assert_eq!(
            vm.maps().get(0, &k.to_le_bytes()),
            Some(u64::from(k).to_le_bytes().as_slice()),
            "key {k} missing after the update loop"
        );
    }
    assert_eq!(vm.maps().get(0, &8u32.to_le_bytes()), None);
}

#[test]
fn byte_round_trip_of_random_programs() {
    let mut rng = SplitMix64::new(0xD15C);
    for _ in 0..100 {
        let prog = random_alu_program(&mut rng, 20);
        let bytes = prog.to_bytes();
        let back = Program::from_bytes(&bytes).expect("round trip decodes");
        assert_eq!(back, prog);
        // Disassembly round-trips too.
        let text = prog.disassemble();
        let reasm = ebpf::asm::assemble(&text).expect("disassembly reassembles");
        assert_eq!(reasm, prog);
    }
}

/// The mixed pruning-campaign corpus: bounded loops (both guard widths)
/// alternating with store-verdict programs whose mask decides
/// accept/reject — the workload the visited-table hygiene and
/// liveness-masking locks both run on.
fn pruning_campaign_program(rng: &mut SplitMix64, round: usize) -> Program {
    if round % 2 == 0 {
        let width = if round % 4 == 0 {
            Width::W64
        } else {
            Width::W32
        };
        random_loop_program_at(rng, 8, width)
    } else {
        let mask = [7i32, 15, 31, 63][rng.below(4) as usize];
        let mut insns = seed_regs(rng);
        for _ in 0..6 {
            insns.push(random_alu_insn(rng));
        }
        insns.extend([
            Insn::Alu {
                width: Width::W64,
                op: AluOp::And,
                dst: Reg::R3,
                src: Src::Imm(mask),
            },
            Insn::Alu {
                width: Width::W64,
                op: AluOp::Mov,
                dst: Reg::R9,
                src: Src::Reg(Reg::R10),
            },
            Insn::Alu {
                width: Width::W64,
                op: AluOp::Add,
                dst: Reg::R9,
                src: Src::Imm(-16),
            },
            Insn::Alu {
                width: Width::W64,
                op: AluOp::Add,
                dst: Reg::R9,
                src: Src::Reg(Reg::R3),
            },
            Insn::Store {
                size: ebpf::MemSize::B,
                base: Reg::R9,
                off: 0,
                src: Src::Imm(0),
            },
            Insn::Exit,
        ]);
        Program::new(insns).expect("store programs validate")
    }
}

#[test]
fn eviction_and_chain_caps_never_change_verdicts() {
    // Pruning-table hygiene — fingerprint-gated probes, dominance
    // eviction, and per-pc chain caps — is a pure optimization: dropping
    // (or never consulting) a visited entry can only mean re-exploring a
    // path, never accepting or rejecting differently. Run the loopy and
    // store-verdict corpora under the path-sensitive strategy across the
    // whole cap spectrum — unbounded chains (0), the default (32), and
    // pathologically tiny caps that evict almost everything — and
    // require identical verdicts; on acceptance, also identical per-pc
    // report states at the exit (the join over explored paths must not
    // depend on table hygiene).
    let caps: [u32; 4] = [0, 32, 2, 1];
    let sessions: Vec<VerificationSession> = caps
        .iter()
        .map(|&visited_cap| {
            VerificationSession::new()
                .with_strategy(Strategy::PathSensitive)
                .with_options(AnalyzerOptions {
                    visited_cap,
                    unroll_k: 4, // force the widening fallback + summaries
                    ..AnalyzerOptions::default()
                })
        })
        .collect();
    let mut rng = SplitMix64::new(0xE71C);
    let (mut accepts, mut rejects) = (0u32, 0u32);
    for round in 0..60 {
        let prog = pruning_campaign_program(&mut rng, round);
        let results: Vec<_> = sessions.iter().map(|s| s.run(&prog)).collect();
        let baseline_ok = results[0].is_ok();
        if baseline_ok {
            accepts += 1;
        } else {
            rejects += 1;
        }
        for (cap, result) in caps.iter().zip(results.iter()).skip(1) {
            assert_eq!(
                result.is_ok(),
                baseline_ok,
                "round {round}: visited_cap={cap} changed the verdict\n{}",
                prog.disassemble(),
            );
        }
        let exit_pc = prog.len() - 1;
        if let Ok(baseline) = &results[0] {
            for (cap, result) in caps.iter().zip(results.iter()).skip(1) {
                let analysis = result.as_ref().expect("same verdict");
                match (
                    baseline.state_before(exit_pc),
                    analysis.state_before(exit_pc),
                ) {
                    (Some(b), Some(a)) => assert!(
                        a.is_subset_of(b) && b.is_subset_of(a),
                        "round {round}: visited_cap={cap} changed the exit state\n{}",
                        prog.disassemble(),
                    ),
                    (b, a) => assert_eq!(
                        b.is_none(),
                        a.is_none(),
                        "round {round}: visited_cap={cap} changed exit reachability"
                    ),
                }
            }
        }
    }
    assert!(
        accepts > 5 && rejects > 5,
        "campaign must exercise both verdicts: {accepts} accepts, {rejects} rejects"
    );
}

#[test]
fn liveness_masked_pruning_never_changes_verdicts_or_reports() {
    // Liveness-aware masking — checkpoint cleaning plus masked visited
    // probes — must be a pure optimization: dead components compare as ⊤
    // and hash to a fixed salt, so states differing only in dead
    // registers collide and prune, but no *live* fact may move. Lock
    // exactly that, across the full configuration matrix of strategies ×
    // memo on/off × visited caps: a masked run must produce the same
    // verdict (same rejection, rendered identically) as its unmasked
    // twin, reach the same pcs, and agree on every live component of
    // every reported state. Dead components are allowed to differ — the
    // masked run cleans them to ⊤ at checkpoints — so both reports are
    // cleaned with the same per-pc liveness mask before comparing.
    let caps: [u32; 3] = [0, 2, 32];
    let strategies = [Strategy::WideningFixpoint, Strategy::PathSensitive];
    let mut rng = SplitMix64::new(0x11FE);
    let (mut accepts, mut rejects) = (0u32, 0u32);
    for round in 0..30 {
        let prog = pruning_campaign_program(&mut rng, round);
        let cfg = Cfg::build(&prog);
        let passes = ProgramPasses::compute(&prog, &cfg);
        let mut counted = false;
        for strategy in strategies {
            for memo_on in [false, true] {
                for cap in caps {
                    let run_with = |liveness_pruning: bool| {
                        VerificationSession::new()
                            .with_strategy(strategy)
                            .with_options(AnalyzerOptions {
                                visited_cap: cap,
                                unroll_k: 4, // widening fallback + summaries
                                liveness_pruning,
                                memo_cache: memo_on.then(|| Arc::new(TransferMemo::new())),
                                ..AnalyzerOptions::default()
                            })
                            .run(&prog)
                    };
                    let masked = run_with(true);
                    let unmasked = run_with(false);
                    let label =
                        format!("round {round} ({strategy:?}, memo={memo_on}, visited_cap={cap})");
                    let (masked, unmasked) = match (masked, unmasked) {
                        (Ok(m), Ok(u)) => {
                            if !counted {
                                accepts += 1;
                                counted = true;
                            }
                            (m, u)
                        }
                        (Err(m), Err(u)) => {
                            assert_eq!(
                                m.to_string(),
                                u.to_string(),
                                "{label}: masking changed the rejection\n{}",
                                prog.disassemble(),
                            );
                            if !counted {
                                rejects += 1;
                                counted = true;
                            }
                            continue;
                        }
                        (m, u) => panic!(
                            "{label}: masking changed the verdict \
                             (masked: {m:?}, unmasked: {u:?})\n{}",
                            prog.disassemble(),
                        ),
                    };
                    for pc in 0..prog.len() {
                        match (masked.state_before(pc), unmasked.state_before(pc)) {
                            (None, None) => {}
                            (Some(m), Some(u)) => {
                                let live = passes.live_in(pc);
                                let mut mc = m.clone();
                                mc.clear_dead(live.regs, live.slots);
                                let mut uc = u.clone();
                                uc.clear_dead(live.regs, live.slots);
                                assert!(
                                    mc.is_subset_of(&uc) && uc.is_subset_of(&mc),
                                    "{label}: live components diverged at pc {pc}\
                                     \nmasked:   {mc:?}\nunmasked: {uc:?}\n{}",
                                    prog.disassemble(),
                                );
                            }
                            (m, u) => panic!(
                                "{label}: masking changed reachability at pc {pc} \
                                 (masked: {}, unmasked: {})\n{}",
                                m.is_some(),
                                u.is_some(),
                                prog.disassemble(),
                            ),
                        }
                    }
                }
            }
        }
    }
    assert!(
        accepts > 5 && rejects > 5,
        "campaign must exercise both verdicts: {accepts} accepts, {rejects} rejects"
    );
}
