//! Parallel-vs-sequential determinism: the work-stealing path explorer
//! ([`Strategy::PathParallel`]) must be a pure wall-clock layer over the
//! sequential path-sensitive walk. For random programs — bounded loops,
//! branch-spliced ALU churn, and store-verdict programs whose mask
//! decides accept/reject — every combination of job count, spawn depth,
//! visited-table cap, and liveness masking must produce verdicts,
//! rejection messages, and per-instruction reports identical to the
//! sequential strategy.
//!
//! This is the fuzz lock on the three ways intra-program parallelism
//! could go wrong: subtree scheduling (stealing reorders *execution*,
//! never the merged report), the shared concurrent visited table (a
//! cross-worker prune may only skip work, never change a join), and the
//! error path (any worker's rejection must reproduce the sequential
//! rejection verbatim, not a scheduling-dependent one).

use domain::rng::SplitMix64;
use ebpf::asm::assemble;
use ebpf::{AluOp, Insn, Program, Reg, Src, Width};
use verifier::{AnalyzerOptions, Strategy, VerificationSession};

/// Asserts the parallel explorer reproduces the sequential verdict,
/// report, and per-pc states for one program/options pair.
fn assert_matches_sequential(prog: &Program, options: AnalyzerOptions, label: &str) {
    let sequential = VerificationSession::new()
        .with_strategy(Strategy::PathSensitive)
        .with_options(AnalyzerOptions {
            explore_jobs: 0,
            spawn_depth: 0,
            ..options.clone()
        })
        .run(prog);
    let parallel = VerificationSession::new()
        .with_strategy(Strategy::PathParallel)
        .with_options(options)
        .run(prog);
    match (&parallel, &sequential) {
        (Ok(par), Ok(seq)) => {
            assert_eq!(
                par.annotate(prog),
                seq.annotate(prog),
                "{label}: report diverged"
            );
            for pc in 0..prog.len() {
                assert_eq!(
                    par.state_before(pc),
                    seq.state_before(pc),
                    "{label}: state diverged at pc {pc}"
                );
            }
        }
        (Err(par), Err(seq)) => {
            assert_eq!(
                par.to_string(),
                seq.to_string(),
                "{label}: rejection diverged"
            );
        }
        (par, seq) => panic!("{label}: verdict diverged: {par:?} vs {seq:?}"),
    }
}

/// The fuzzed register set: seeded with constants up front so every
/// random use reads an initialized register.
const FUZZ_REGS: [Reg; 5] = [Reg::R0, Reg::R3, Reg::R4, Reg::R6, Reg::R7];

/// Seed instructions giving every fuzzed register a random constant.
fn seed_regs(rng: &mut SplitMix64) -> Vec<Insn> {
    FUZZ_REGS
        .iter()
        .enumerate()
        .map(|(i, &r)| Insn::Alu {
            width: Width::W64,
            op: AluOp::Mov,
            dst: r,
            src: Src::Imm(rng.next_i32() >> (i * 3)),
        })
        .collect()
}

/// One random ALU instruction over [`FUZZ_REGS`].
fn random_alu_insn(rng: &mut SplitMix64) -> Insn {
    let ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Rsh,
        AluOp::Mov,
    ];
    let op = ops[rng.below(ops.len() as u64) as usize];
    let width = if rng.ratio(3, 10) {
        Width::W32
    } else {
        Width::W64
    };
    let dst = FUZZ_REGS[rng.below(FUZZ_REGS.len() as u64) as usize];
    let src = if rng.coin() {
        Src::Reg(FUZZ_REGS[rng.below(FUZZ_REGS.len() as u64) as usize])
    } else if op == AluOp::Rsh {
        Src::Imm(rng.below(if width == Width::W32 { 32 } else { 64 }) as i32)
    } else {
        Src::Imm(rng.next_i32())
    };
    Insn::Alu {
        width,
        op,
        dst,
        src,
    }
}

/// Splices a random forward conditional branch into `insns` (which must
/// not yet carry its `Exit`), creating a two-successor fork the parallel
/// explorer can spawn at.
fn splice_branch(rng: &mut SplitMix64, insns: &mut Vec<Insn>) {
    let at = rng.range(6, insns.len() as u64) as usize;
    let skip = rng.below((insns.len() - at) as u64) as i16;
    let cmp_ops = [
        ebpf::JmpOp::Eq,
        ebpf::JmpOp::Ne,
        ebpf::JmpOp::Lt,
        ebpf::JmpOp::Ge,
        ebpf::JmpOp::Sgt,
        ebpf::JmpOp::Sle,
    ];
    insns.insert(
        at,
        Insn::Jmp {
            width: Width::W64,
            op: cmp_ops[rng.below(cmp_ops.len() as u64) as usize],
            dst: Reg::R3,
            src: if rng.coin() {
                Src::Reg(Reg::R4)
            } else {
                Src::Imm(rng.next_i32())
            },
            off: skip,
        },
    );
}

/// Appends the store-verdict tail: a byte store through
/// `r10 - 16 + (r3 & mask)` — masks 7/15 keep it in bounds (accept),
/// 31/63 provably overrun on some path (reject). `overrun` picks the
/// side, so the campaign exercises both verdicts deterministically.
fn push_store_tail(rng: &mut SplitMix64, insns: &mut Vec<Insn>, overrun: bool) {
    let mask = if overrun {
        [31i32, 63][rng.below(2) as usize]
    } else {
        [7i32, 15][rng.below(2) as usize]
    };
    insns.extend([
        Insn::Alu {
            width: Width::W64,
            op: AluOp::And,
            dst: Reg::R3,
            src: Src::Imm(mask),
        },
        Insn::Alu {
            width: Width::W64,
            op: AluOp::Mov,
            dst: Reg::R9,
            src: Src::Reg(Reg::R10),
        },
        Insn::Alu {
            width: Width::W64,
            op: AluOp::Add,
            dst: Reg::R9,
            src: Src::Imm(-16),
        },
        Insn::Alu {
            width: Width::W64,
            op: AluOp::Add,
            dst: Reg::R9,
            src: Src::Reg(Reg::R3),
        },
        Insn::Store {
            size: ebpf::MemSize::B,
            base: Reg::R9,
            off: 0,
            src: Src::Imm(0),
        },
    ]);
}

/// A random counter loop: an untrusted-input trip count, a random ALU
/// body, and a `r8 < limit` back edge at the given guard width — limits
/// straddle the `unroll_k` the campaign runs with, so both exact
/// unrolling and the widening-fallback summaries are exercised.
fn random_loop_program(rng: &mut SplitMix64, body_len: usize, width: Width) -> Program {
    let mut insns: Vec<Insn> = vec![
        Insn::Load {
            size: ebpf::MemSize::B,
            dst: Reg::R8,
            base: Reg::R1,
            off: 0,
        },
        Insn::Alu {
            width: Width::W64,
            op: AluOp::And,
            dst: Reg::R8,
            src: Src::Imm(7),
        },
    ];
    insns.extend(seed_regs(rng));
    let head = insns.len();
    for _ in 0..body_len {
        insns.push(random_alu_insn(rng));
    }
    insns.push(Insn::Alu {
        width: Width::W64,
        op: AluOp::Add,
        dst: Reg::R8,
        src: Src::Imm(1),
    });
    let limit = rng.range(8, 25) as i32;
    let jmp_index = insns.len();
    insns.push(Insn::Jmp {
        width,
        op: ebpf::JmpOp::Lt,
        dst: Reg::R8,
        src: Src::Imm(limit),
        off: (head as i64 - (jmp_index + 1) as i64) as i16,
    });
    insns.push(Insn::Exit);
    Program::new(insns).expect("loop programs validate")
}

/// The mixed campaign corpus, round-robin over the three shapes the
/// parallel explorer must handle: bounded loops (back edges never
/// spawn), branch-spliced straight-line programs with a store verdict
/// (forks spawn, mask decides accept/reject), and doubly-spliced
/// branch trees (nested forks, pure ALU).
fn campaign_program(rng: &mut SplitMix64, round: usize) -> Program {
    match round % 3 {
        0 => {
            let width = if round % 2 == 0 {
                Width::W64
            } else {
                Width::W32
            };
            random_loop_program(rng, 8, width)
        }
        1 => {
            let mut insns = seed_regs(rng);
            for _ in 0..10 {
                insns.push(random_alu_insn(rng));
            }
            splice_branch(rng, &mut insns);
            push_store_tail(rng, &mut insns, (round / 3) % 2 == 0);
            insns.push(Insn::Exit);
            Program::new(insns).expect("store programs validate")
        }
        _ => {
            let mut insns = seed_regs(rng);
            for _ in 0..12 {
                insns.push(random_alu_insn(rng));
            }
            splice_branch(rng, &mut insns);
            splice_branch(rng, &mut insns);
            insns.push(Insn::Exit);
            Program::new(insns).expect("branchy ALU programs validate")
        }
    }
}

#[test]
fn parallel_explorer_is_bit_identical_across_the_matrix() {
    let mut rng = SplitMix64::new(0x9A51);
    let (mut accepts, mut rejects) = (0u32, 0u32);
    for round in 0..24 {
        let prog = campaign_program(&mut rng, round);
        // Alternate between forced widening-fallback summaries and pure
        // unrolling so both job-local loop regimes are locked.
        let unroll_k = if round % 2 == 0 { 4 } else { 32 };
        let mut counted = false;
        for masking in [true, false] {
            for cap in [0u32, 2, 32] {
                let options = |explore_jobs: u32, spawn_depth: u32| AnalyzerOptions {
                    visited_cap: cap,
                    unroll_k,
                    liveness_pruning: masking,
                    explore_jobs,
                    spawn_depth,
                    ..AnalyzerOptions::default()
                };
                let sequential = VerificationSession::new()
                    .with_strategy(Strategy::PathSensitive)
                    .with_options(options(0, 0))
                    .run(&prog);
                if !counted {
                    match &sequential {
                        Ok(_) => accepts += 1,
                        Err(_) => rejects += 1,
                    }
                    counted = true;
                }
                for jobs in [1u32, 2, 8] {
                    for spawn_depth in [0u32, 2, 8] {
                        let parallel = VerificationSession::new()
                            .with_strategy(Strategy::PathParallel)
                            .with_options(options(jobs, spawn_depth))
                            .run(&prog);
                        let label = format!(
                            "round {round} (jobs={jobs}, spawn_depth={spawn_depth}, \
                             cap={cap}, masking={masking}, unroll_k={unroll_k})"
                        );
                        match (&parallel, &sequential) {
                            (Ok(par), Ok(seq)) => {
                                assert_eq!(
                                    par.annotate(&prog),
                                    seq.annotate(&prog),
                                    "{label}: report diverged\n{}",
                                    prog.disassemble(),
                                );
                                for pc in 0..prog.len() {
                                    assert_eq!(
                                        par.state_before(pc),
                                        seq.state_before(pc),
                                        "{label}: state diverged at pc {pc}\n{}",
                                        prog.disassemble(),
                                    );
                                }
                            }
                            (Err(par), Err(seq)) => assert_eq!(
                                par.to_string(),
                                seq.to_string(),
                                "{label}: rejection diverged\n{}",
                                prog.disassemble(),
                            ),
                            (par, seq) => panic!(
                                "{label}: verdict diverged: {par:?} vs {seq:?}\n{}",
                                prog.disassemble(),
                            ),
                        }
                    }
                }
            }
        }
    }
    assert!(
        accepts > 10 && rejects >= 3,
        "campaign must exercise both verdicts: {accepts} accepts, {rejects} rejects"
    );
}

#[test]
fn fork_before_widening_loop_matches_sequential() {
    // A branch fork feeding a loop that outruns `unroll_k = 4`: the
    // spawned subtree and the stealing worker both hit the widening
    // fallback, and the merged report must still be the sequential one.
    let prog = assemble(
        r"
        r2 = *(u8 *)(r1 + 0)
        r3 = 1
        if r2 > 3 goto c
        r3 = 0
    c:
        r8 = 0
    loop:
        r3 += 1
        r8 += 1
        if r8 < 100 goto loop
        r0 = 0
        exit
    ",
    )
    .expect("assembles");
    for jobs in [1u32, 2, 8] {
        for depth in [0u32, 1] {
            let options = AnalyzerOptions {
                unroll_k: 4,
                explore_jobs: jobs,
                spawn_depth: depth,
                ..AnalyzerOptions::default()
            };
            assert_matches_sequential(&prog, options, &format!("jobs={jobs} depth={depth}"));
        }
    }
}

#[test]
fn map_helper_programs_are_bit_identical_across_the_matrix() {
    // Map-heavy shapes stress exactly the state the parallel layer must
    // ship across workers: MapHandle/MapValuePtr registers (their
    // fingerprints feed the shared visited table), the NULL-check fork
    // (a spawnable two-successor branch whose edges differ in register
    // *kind*, not just range), and helper clobbers inside loops.
    let lookup_filter = assemble(
        r"
        *(u32 *)(r10 - 4) = 1
        r1 = map 0
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto miss
        r1 = *(u64 *)(r0 + 0)
        r1 += 1
        *(u64 *)(r0 + 0) = r1
        r0 = 1
        exit
    miss:
        r0 = 0
        exit
    ",
    )
    .expect("assembles");
    let update_loop = assemble(
        r"
        r6 = 0
    loop:
        *(u32 *)(r10 - 4) = r6
        *(u64 *)(r10 - 16) = r6
        r1 = map 0
        r2 = r10
        r2 += -4
        r3 = r10
        r3 += -16
        r4 = 0
        call 2
        r6 += 1
        if r6 < 8 goto loop
        r0 = 0
        exit
    ",
    )
    .expect("assembles");
    // Lookup under a data-dependent fork, delete on one side — both
    // edges re-join on a second NULL check.
    let forked_lookup = assemble(
        r"
        r6 = *(u8 *)(r1 + 0)
        *(u32 *)(r10 - 4) = r6
        r1 = map 0
        r2 = r10
        r2 += -4
        if r6 > 7 goto probe
        call 1
        if r0 != 0 goto hit
        r0 = 0
        exit
    probe:
        call 3
        r0 = 0
        exit
    hit:
        r7 = *(u64 *)(r0 + 0)
        r0 = r7
        exit
    ",
    )
    .expect("assembles");
    for (name, prog) in [
        ("lookup_filter", &lookup_filter),
        ("update_loop", &update_loop),
        ("forked_lookup", &forked_lookup),
    ] {
        for masking in [true, false] {
            for cap in [0u32, 2, 32] {
                for jobs in [1u32, 2, 8] {
                    for spawn_depth in [0u32, 2] {
                        let options = AnalyzerOptions {
                            visited_cap: cap,
                            unroll_k: 4,
                            liveness_pruning: masking,
                            explore_jobs: jobs,
                            spawn_depth,
                            ..AnalyzerOptions::default()
                        };
                        let label = format!(
                            "{name} (jobs={jobs}, spawn_depth={spawn_depth}, \
                             cap={cap}, masking={masking})"
                        );
                        assert_matches_sequential(prog, options, &label);
                    }
                }
            }
        }
    }
}

#[test]
fn budget_exhaustion_reproduces_the_sequential_error() {
    // A tiny analysis budget trips mid-walk on every job count; the
    // parallel explorer discards its partial work and re-runs
    // sequentially, so the budget error (and its pc) must be the
    // sequential one verbatim, not whichever worker happened to cross
    // the global counter first.
    let mut rng = SplitMix64::new(0xB0D6);
    let prog = random_loop_program(&mut rng, 8, Width::W64);
    let options = |explore_jobs: u32| AnalyzerOptions {
        analysis_budget: 40,
        explore_jobs,
        ..AnalyzerOptions::default()
    };
    let sequential = VerificationSession::new()
        .with_strategy(Strategy::PathSensitive)
        .with_options(options(0))
        .run(&prog)
        .expect_err("a 40-visit budget cannot cover the loop");
    for jobs in [1u32, 2, 8] {
        let parallel = VerificationSession::new()
            .with_strategy(Strategy::PathParallel)
            .with_options(options(jobs))
            .run(&prog)
            .expect_err("same budget, same exhaustion");
        assert_eq!(
            parallel.to_string(),
            sequential.to_string(),
            "jobs={jobs}: budget error diverged"
        );
    }
}
