//! The abstraction-layer acceptance suite: every shipped domain is a
//! lawful lattice Galois-connected to sets of machine words, and the
//! *same* generic bounded-verification campaign (soundness per Eqn. 11 +
//! optimality vs `α ∘ f ∘ γ`) passes for all of them from one code path.

use bitwise_domain::KnownBits;
use domain::laws::{assert_galois_soundness, assert_lattice_laws, assert_sampling_sound};
use domain::{AbstractDomain, RefineFrom};
use interval_domain::Bounds;
use tnum::Tnum;
use tnum_verify::campaign::{run_campaign, CampaignConfig};
use verifier::{Product, Scalar};

// --- Lattice laws (join/meet idempotence, commutativity, absorption,
// --- ⊑ consistency) for all three domains at widths ≤ 6. ---------------

#[test]
fn tnum_lattice_laws_widths_up_to_4() {
    for w in 1..=4 {
        assert_lattice_laws::<Tnum>(w);
    }
}

#[test]
fn knownbits_lattice_laws_widths_up_to_4() {
    for w in 1..=4 {
        assert_lattice_laws::<KnownBits>(w);
    }
}

#[test]
fn bounds_lattice_laws_widths_up_to_3() {
    // The bounds enumeration is quadratic in 2^w; width 3 already checks
    // 36^2 pairs of intervals.
    for w in 1..=3 {
        assert_lattice_laws::<Bounds>(w);
    }
}

// --- Galois soundness: x ∈ γ(α({x})), membership/enumeration closure,
// --- reductivity of α — for all three domains. ------------------------

#[test]
fn tnum_galois_soundness_width_6() {
    assert_galois_soundness::<Tnum>(6);
}

#[test]
fn knownbits_galois_soundness_width_6() {
    assert_galois_soundness::<KnownBits>(6);
}

#[test]
fn bounds_galois_soundness_width_5() {
    assert_galois_soundness::<Bounds>(5);
}

#[test]
fn width64_sampling_is_sound_for_all_domains() {
    assert_sampling_sound::<Tnum>(4_000, 0xA);
    assert_sampling_sound::<KnownBits>(4_000, 0xB);
    assert_sampling_sound::<Bounds>(4_000, 0xC);
}

// --- The acceptance criterion: one campaign, three domains. ------------

#[test]
fn generic_campaign_validates_all_three_domains() {
    let config = |width| CampaignConfig {
        width,
        optimality: true,
        spot_pairs: 500,
        spot_members: 8,
        seed: 0xC60_2022,
    };
    let t = run_campaign::<Tnum>(config(5));
    let k = run_campaign::<KnownBits>(config(5));
    let b = run_campaign::<Bounds>(config(4));
    for r in [&t, &k, &b] {
        assert!(r.all_sound(), "{}: {r:?}", r.domain);
        // Every operator of the suite ran through the same catalog.
        let names: Vec<&str> = r.entries.iter().map(|e| e.op).collect();
        assert_eq!(
            names,
            [
                "add", "sub", "mul", "and", "or", "xor", "lshift", "rshift", "arshift", "div",
                "mod"
            ]
        );
    }
    // The two value/mask encodings are isomorphic: identical verdicts.
    for (et, ek) in t.entries.iter().zip(&k.entries) {
        assert_eq!(et.optimal, ek.optimal, "{}", et.op);
        assert_eq!(et.member_checks, ek.member_checks, "{}", et.op);
    }
    // The theorems the paper proves, read off the tnum campaign: add/sub
    // and the bitwise operators are optimal, multiplication is not.
    let verdict = |name: &str| {
        t.entries
            .iter()
            .find(|e| e.op == name)
            .expect("operator in suite")
            .optimal
    };
    for optimal_op in ["add", "sub", "and", "or", "xor"] {
        assert_eq!(
            verdict(optimal_op),
            Some(true),
            "{optimal_op} must be optimal"
        );
    }
    assert_eq!(
        verdict("mul"),
        Some(false),
        "our_mul is sound but not optimal (§III-C)"
    );
}

// --- The reduced product is domain-generic: Scalar is just one instance.

#[test]
fn scalar_is_the_generic_product_instance() {
    // Type-level check: this only compiles because Scalar == Product<..>.
    let s: Product<Tnum, Bounds> = Scalar::constant(42);
    assert_eq!(s.as_constant(), Some(42));
    // The RefineFrom hooks drive the same sync the kernel performs.
    let t: Tnum = "xx0".parse().unwrap();
    let refined = Bounds::FULL.refine_from(&t).unwrap();
    assert_eq!(refined.umax(), 6);
    let p = Product::from_parts(t, Bounds::FULL).unwrap();
    assert_eq!(p.second(), refined);
}

#[test]
fn product_laws_on_random_scalars() {
    // Join/meet/order coherence of the product, sampled at width 64.
    let mut rng = domain::rng::SplitMix64::new(0x77);
    for _ in 0..500 {
        let a = Scalar::from_tnum(Tnum::random(&mut rng));
        let b = Scalar::from_tnum(Tnum::random(&mut rng));
        let j = a.union(b);
        assert!(a.is_subset_of(j) && b.is_subset_of(j));
        assert!(a.is_subset_of(a));
        match a.intersect(b) {
            Some(m) => {
                assert!(m.is_subset_of(a) && m.is_subset_of(b));
            }
            None => {
                let x = a.tnum().random_member(&mut rng);
                assert!(!b.contains(x) || !a.contains(x));
            }
        }
    }
}
