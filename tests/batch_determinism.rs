//! Batch-vs-sequential determinism: the batched engine
//! ([`VerificationSession::run_batch`]) must be a pure throughput layer.
//! For random programs — loop-free and loopy — every combination of
//! worker count and memo-cache setting must produce verdicts and
//! per-instruction reports identical to a plain sequential run.
//!
//! This is the fuzz lock on the two ways batching could go wrong:
//! cross-thread scheduling (work stealing reorders *execution*, never
//! results) and cross-program memoization (a cache hit must be
//! indistinguishable from recomputation).

use std::sync::Arc;

use domain::rng::SplitMix64;
use ebpf::{AluOp, Insn, Program, Reg, Src, Width};
use verifier::{AnalyzerOptions, TransferMemo, VerificationSession};

/// The fuzzed register set: seeded with constants up front so every
/// random use reads an initialized register.
const FUZZ_REGS: [Reg; 5] = [Reg::R0, Reg::R3, Reg::R4, Reg::R6, Reg::R7];

/// Seed instructions giving every fuzzed register a random constant.
fn seed_regs(rng: &mut SplitMix64) -> Vec<Insn> {
    FUZZ_REGS
        .iter()
        .enumerate()
        .map(|(i, &r)| Insn::Alu {
            width: Width::W64,
            op: AluOp::Mov,
            dst: r,
            src: Src::Imm(rng.next_i32() >> (i * 3)),
        })
        .collect()
}

/// One random ALU instruction over [`FUZZ_REGS`].
fn random_alu_insn(rng: &mut SplitMix64) -> Insn {
    let ops = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Rsh,
        AluOp::Mov,
    ];
    let op = ops[rng.below(ops.len() as u64) as usize];
    let width = if rng.ratio(3, 10) {
        Width::W32
    } else {
        Width::W64
    };
    let dst = FUZZ_REGS[rng.below(FUZZ_REGS.len() as u64) as usize];
    let src = if rng.coin() {
        Src::Reg(FUZZ_REGS[rng.below(FUZZ_REGS.len() as u64) as usize])
    } else if op == AluOp::Rsh {
        Src::Imm(rng.below(if width == Width::W32 { 32 } else { 64 }) as i32)
    } else {
        Src::Imm(rng.next_i32())
    };
    Insn::Alu {
        width,
        op,
        dst,
        src,
    }
}

/// A random loop-free ALU program.
fn random_straight_program(rng: &mut SplitMix64, len: usize) -> Program {
    let mut insns = seed_regs(rng);
    for _ in 0..len {
        insns.push(random_alu_insn(rng));
    }
    insns.push(Insn::Exit);
    Program::new(insns).expect("straight-line ALU programs always validate")
}

/// A random counter loop: seeds, a random ALU body, `r8 += 1`, and a
/// back edge bounded by a random exit test — trip counts straddle the
/// default widening delay, so both exact iteration and widening paths
/// are exercised.
fn random_loop_program(rng: &mut SplitMix64, body_len: usize) -> Program {
    let mut insns = vec![Insn::Alu {
        width: Width::W64,
        op: AluOp::Mov,
        dst: Reg::R8,
        src: Src::Imm(0),
    }];
    insns.extend(seed_regs(rng));
    let head = insns.len();
    for _ in 0..body_len {
        insns.push(random_alu_insn(rng));
    }
    insns.push(Insn::Alu {
        width: Width::W64,
        op: AluOp::Add,
        dst: Reg::R8,
        src: Src::Imm(1),
    });
    let limit = rng.range(4, 25) as i32;
    let jmp_index = insns.len();
    let off = i16::try_from(head as i64 - (jmp_index as i64 + 1)).expect("small programs");
    insns.push(Insn::Jmp {
        width: Width::W64,
        op: ebpf::JmpOp::Lt,
        dst: Reg::R8,
        src: Src::Imm(limit),
        off,
    });
    insns.push(Insn::Exit);
    Program::new(insns).expect("counter loops validate")
}

/// A deterministic mixed corpus: loop-free and loopy programs
/// interleaved.
fn corpus(seed: u64, n: usize) -> Vec<Program> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                random_straight_program(&mut rng, 12)
            } else {
                random_loop_program(&mut rng, 6)
            }
        })
        .collect()
}

/// A session with the memo cache on (fresh `Arc`) or off.
fn session(memo: bool) -> VerificationSession {
    let memo_cache = memo.then(|| Arc::new(TransferMemo::new()));
    VerificationSession::new().with_options(AnalyzerOptions {
        memo_cache,
        ..AnalyzerOptions::default()
    })
}

#[test]
fn batch_matches_sequential_across_jobs_and_memo_settings() {
    let progs = corpus(0xBA7C4, 24);
    // The sequential reference: one fresh memo-less run per program.
    let reference: Vec<_> = progs.iter().map(|p| session(false).run(p)).collect();
    for memo in [false, true] {
        for jobs in [1, 2, 8] {
            let report = session(memo).run_batch(&progs, jobs);
            assert_eq!(report.results.len(), progs.len());
            for (i, (got, want)) in report.results.iter().zip(&reference).enumerate() {
                match (got, want) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.annotate(&progs[i]),
                            b.annotate(&progs[i]),
                            "report diverged: program {i}, memo={memo}, jobs={jobs}"
                        );
                        for pc in 0..progs[i].len() {
                            assert_eq!(
                                a.state_before(pc),
                                b.state_before(pc),
                                "state diverged: program {i} pc {pc}, memo={memo}, jobs={jobs}"
                            );
                        }
                    }
                    (Err(a), Err(b)) => assert_eq!(
                        a, b,
                        "rejection diverged: program {i}, memo={memo}, jobs={jobs}"
                    ),
                    (a, b) => panic!(
                        "verdict diverged: program {i}, memo={memo}, jobs={jobs}: \
                         {a:?} vs {b:?}"
                    ),
                }
            }
        }
    }
}

#[test]
fn memo_hits_never_change_a_sequential_report() {
    // Run the same corpus twice through one memo-carrying session: the
    // second pass is served largely from the cache and must reproduce
    // the first pass (and the memo-less reference) verbatim.
    let progs = corpus(0x5EED5, 12);
    let shared = session(true);
    let cold: Vec<_> = progs.iter().map(|p| shared.run(p)).collect();
    let warm: Vec<_> = progs.iter().map(|p| shared.run(p)).collect();
    let reference: Vec<_> = progs.iter().map(|p| session(false).run(p)).collect();
    let mut warm_hits = 0;
    for (i, ((c, w), r)) in cold.iter().zip(&warm).zip(&reference).enumerate() {
        match (c, w, r) {
            (Ok(c), Ok(w), Ok(r)) => {
                warm_hits += w.stats().memo_hits;
                let (ca, wa, ra) = (
                    c.annotate(&progs[i]),
                    w.annotate(&progs[i]),
                    r.annotate(&progs[i]),
                );
                assert_eq!(ca, wa, "warm run diverged on program {i}");
                assert_eq!(ca, ra, "memo run diverged from memo-less on program {i}");
            }
            (Err(c), Err(w), Err(r)) => {
                assert_eq!(c, w, "warm rejection diverged on program {i}");
                assert_eq!(c, r, "memo rejection diverged on program {i}");
            }
            (c, w, r) => panic!("verdicts diverged on program {i}: {c:?} / {w:?} / {r:?}"),
        }
    }
    assert!(warm_hits > 0, "the warm pass must be served from the cache");
}
