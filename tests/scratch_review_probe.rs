use ebpf::asm::assemble;
use verifier::{AnalyzerOptions, Strategy, VerificationSession};

#[test]
fn fork_before_widening_loop_matches_sequential() {
    let prog = assemble(
        r"
        r2 = *(u8 *)(r1 + 0)
        r3 = 1
        if r2 > 3 goto c
        r3 = 0
    c:
        r8 = 0
    loop:
        r3 += 1
        r8 += 1
        if r8 < 100 goto loop
        r0 = 0
        exit
    ",
    )
    .expect("assembles");
    for jobs in [1u32, 2, 8] {
        for depth in [0u32, 1] {
            let opts = |explore_jobs, spawn_depth| AnalyzerOptions {
                unroll_k: 4,
                explore_jobs,
                spawn_depth,
                ..AnalyzerOptions::default()
            };
            let seq = VerificationSession::new()
                .with_strategy(Strategy::PathSensitive)
                .with_options(opts(1, 0))
                .run(&prog)
                .expect("seq accepts");
            let par = VerificationSession::new()
                .with_strategy(Strategy::PathParallel)
                .with_options(opts(jobs, depth))
                .run(&prog)
                .expect("par accepts");
            assert_eq!(
                par.annotate(&prog),
                seq.annotate(&prog),
                "jobs={jobs} depth={depth}: report diverged"
            );
            for pc in 0..prog.len() {
                assert_eq!(
                    par.state_before(pc),
                    seq.state_before(pc),
                    "jobs={jobs} depth={depth}: state diverged at pc {pc}"
                );
            }
        }
    }
}
