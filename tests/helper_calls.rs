//! The helper-call contract, end to end: NULL-until-checked map value
//! pointers, registry-driven argument checking, equivalence of all four
//! entry points (fixpoint, path-sensitive, parshard, batch) on the map
//! fixtures, and the memo-cache exclusion for helper transfers.

use ebpf::asm::assemble;
use ebpf::{Program, Reg};
use verifier::{Strategy, VerificationSession, VerifierError};

fn session(strategy: Strategy) -> VerificationSession {
    VerificationSession::new().with_strategy(strategy)
}

const ALL_STRATEGIES: [Strategy; 3] = [
    Strategy::WideningFixpoint,
    Strategy::PathSensitive,
    Strategy::PathParallel,
];

/// A lookup whose result is dereferenced without any NULL check.
const UNCHECKED_DEREF: &str = r"
    *(u32 *)(r10 - 4) = 1
    r1 = map 0
    r2 = r10
    r2 += -4
    call 1
    r3 = *(u64 *)(r0 + 0)
    r0 = r3
    exit
";

#[test]
fn unchecked_map_value_deref_is_rejected_precisely() {
    let prog = assemble(UNCHECKED_DEREF).expect("assembles");
    for strategy in ALL_STRATEGIES {
        let err = session(strategy).run(&prog).expect_err("must reject");
        assert_eq!(
            err,
            VerifierError::NullMapValue {
                reg: Reg::R0,
                pc: 5
            },
            "{}: wrong rejection",
            strategy.name()
        );
        assert!(
            err.to_string().contains("may be NULL"),
            "diagnosis should explain the missing NULL check: {err}"
        );
    }
}

#[test]
fn null_check_makes_the_nonzero_edge_dereferenceable() {
    // Same program with the check inserted — every strategy accepts,
    // and the annotated report shows the or_null pointer refined on the
    // surviving edge.
    let prog = assemble(
        r"
        *(u32 *)(r10 - 4) = 1
        r1 = map 0
        r2 = r10
        r2 += -4
        call 1
        if r0 == 0 goto miss
        r3 = *(u64 *)(r0 + 0)
        r0 = r3
        exit
    miss:
        r0 = 0
        exit
    ",
    )
    .expect("assembles");
    for strategy in ALL_STRATEGIES {
        let analysis = session(strategy)
            .run(&prog)
            .unwrap_or_else(|e| panic!("{}: rejected NULL-checked deref: {e}", strategy.name()));
        let report = analysis.annotate(&prog);
        assert!(
            report.contains("map0_value?"),
            "{}: report should show the may-be-NULL pointer\n{report}",
            strategy.name()
        );
        assert!(
            report.contains("r0=map0_value+0"),
            "{}: report should show the refined pointer on the hit edge\n{report}",
            strategy.name()
        );
    }
}

#[test]
fn null_check_also_works_inverted_and_against_a_zero_register() {
    // `!= 0` jumps to the dereference; the fall-through is the NULL
    // edge. A register holding constant 0 refines exactly like `Imm(0)`.
    let prog = assemble(
        r"
        *(u32 *)(r10 - 4) = 1
        r1 = map 0
        r2 = r10
        r2 += -4
        call 1
        r6 = 0
        if r0 != r6 goto hit
        r0 = 0
        exit
    hit:
        r3 = *(u64 *)(r0 + 0)
        r0 = r3
        exit
    ",
    )
    .expect("assembles");
    for strategy in ALL_STRATEGIES {
        session(strategy)
            .run(&prog)
            .unwrap_or_else(|e| panic!("{}: rejected inverted check: {e}", strategy.name()));
    }
}

#[test]
fn helper_argument_errors_are_precise() {
    // r1 is a scalar, not a map handle.
    let prog = assemble("*(u32 *)(r10 - 4) = 1\nr1 = 7\nr2 = r10\nr2 += -4\ncall 1\nr0 = 0\nexit")
        .expect("assembles");
    let err = session(Strategy::WideningFixpoint)
        .run(&prog)
        .expect_err("must reject");
    assert_eq!(
        err,
        VerifierError::BadHelperArg {
            helper: 1,
            arg: 1,
            expected: "a map handle",
            pc: 4
        }
    );
    assert!(err.to_string().contains("argument r1 is not a map handle"));

    // The key region is never initialized.
    let prog = assemble("r1 = map 0\nr2 = r10\nr2 += -4\ncall 1\nr0 = 0\nexit").expect("assembles");
    assert_eq!(
        session(Strategy::PathSensitive)
            .run(&prog)
            .expect_err("must reject"),
        VerifierError::UninitStackRead { pc: 3 }
    );

    // An id outside the registry.
    let prog = assemble("call 42\nexit").expect("assembles");
    assert_eq!(
        session(Strategy::WideningFixpoint)
            .run(&prog)
            .expect_err("must reject"),
        VerifierError::UnknownHelper { helper: 42, pc: 0 }
    );

    // A tagged lddw naming a map that does not exist.
    let prog = assemble("r1 = map 9\nr0 = 0\nexit").expect("assembles");
    assert_eq!(
        session(Strategy::WideningFixpoint)
            .run(&prog)
            .expect_err("must reject"),
        VerifierError::UnknownMap { map: 9, pc: 0 }
    );
}

#[test]
fn map_value_accesses_are_bounds_checked_and_leak_free() {
    let checked_deref = |tail: &str| {
        assemble(&format!(
            r"
            *(u32 *)(r10 - 4) = 1
            r1 = map 0
            r2 = r10
            r2 += -4
            call 1
            if r0 == 0 goto miss
            {tail}
        miss:
            r0 = 0
            exit
        "
        ))
        .expect("assembles")
    };
    // map 0's value is 8 bytes: offset 8 is out of bounds.
    let oob = checked_deref("r3 = *(u64 *)(r0 + 8)\nr0 = 0\nexit");
    assert!(matches!(
        session(Strategy::PathSensitive)
            .run(&oob)
            .expect_err("must reject"),
        VerifierError::OutOfBounds {
            region: "map_value",
            ..
        }
    ));
    // Pointer arithmetic within the value region is fine...
    let shifted = checked_deref("r0 += 4\nr3 = *(u32 *)(r0 + 0)\nr0 = r3\nexit");
    session(Strategy::PathSensitive)
        .run(&shifted)
        .expect("in-bounds after += 4");
    // ...but arithmetic on the *unchecked* pointer is not.
    let early_math =
        assemble("*(u32 *)(r10 - 4) = 1\nr1 = map 0\nr2 = r10\nr2 += -4\ncall 1\nr0 += 4\nexit")
            .expect("assembles");
    assert_eq!(
        session(Strategy::PathSensitive)
            .run(&early_math)
            .expect_err("must reject"),
        VerifierError::BadPointerArithmetic { pc: 5 }
    );
    // Storing a pointer into a map value would publish a kernel address.
    let leak = checked_deref("*(u64 *)(r0 + 0) = r10\nr0 = 0\nexit");
    assert_eq!(
        session(Strategy::PathSensitive)
            .run(&leak)
            .expect_err("must reject"),
        VerifierError::PointerLeak { pc: 6 }
    );
    // Returning the pointer leaks it just the same.
    let ret_leak = checked_deref("exit");
    assert_eq!(
        session(Strategy::PathSensitive)
            .run(&ret_leak)
            .expect_err("must reject"),
        VerifierError::PointerLeak { pc: 6 }
    );
}

#[test]
fn helper_transfers_are_never_memoized() {
    // A program of nothing but helper calls: with the memo cache on (the
    // default), the analysis must record zero cache traffic — helper
    // transfers produce pointers and model impure runtime behaviour, so
    // they are structurally outside the memo's domain.
    let prog = assemble("call 7\ncall 7\ncall 7\nexit").expect("assembles");
    for strategy in ALL_STRATEGIES {
        let analysis = session(strategy).run(&prog).expect("accepts");
        let stats = analysis.stats();
        assert_eq!(
            (stats.memo_hits, stats.memo_misses),
            (0, 0),
            "{}: helper calls must not touch the memo cache",
            strategy.name()
        );
    }
}

#[test]
fn all_four_entry_points_agree_on_the_map_fixtures() {
    let load = |name: &str| {
        let source = std::fs::read_to_string(format!("fixtures/{name}")).expect("fixture exists");
        assemble(&source).expect("fixture assembles")
    };
    let progs: Vec<Program> = vec![load("map_filter.ebpf"), load("map_update_loop.ebpf")];

    // The batch engine runs the path-sensitive walk per program; every
    // entry point must produce the same verdict and the same annotated
    // per-pc report, and within the path family (path, parshard, batch —
    // the same walk under three schedulers) the per-pc states must be
    // bit-identical. The fixpoint engine joins loop trips instead of
    // unrolling them, so its state *structure* may legitimately be
    // coarser even when the reported values agree.
    let batch = VerificationSession::new()
        .with_strategy(Strategy::PathSensitive)
        .run_batch(&progs, 2);
    for (prog, batch_result) in progs.iter().zip(&batch.results) {
        let batch_analysis = batch_result.as_ref().expect("fixtures verify");
        let reference = batch_analysis.annotate(prog);
        for strategy in ALL_STRATEGIES {
            let analysis = session(strategy).run(prog).expect("fixtures verify");
            assert_eq!(
                analysis.annotate(prog),
                reference,
                "{} vs batch: report diverged",
                strategy.name()
            );
            if strategy == Strategy::WideningFixpoint {
                continue;
            }
            for pc in 0..prog.len() {
                assert_eq!(
                    analysis.state_before(pc),
                    batch_analysis.state_before(pc),
                    "{} vs batch: state diverged at pc {pc}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn helper_clobbers_are_path_accurate() {
    // r6 (callee-saved) survives the call; r7 copied from r1 before the
    // call is fine, but reading r1 itself after the call is an uninit
    // read — the registry clobber must not be weakened by liveness
    // masking or memoization.
    let ok = assemble("r6 = 5\ncall 7\nr0 = r6\nexit").expect("assembles");
    session(Strategy::PathSensitive)
        .run(&ok)
        .expect("callee-saved survives");
    let bad = assemble("r1 = 5\ncall 7\nr0 = r1\nexit").expect("assembles");
    assert_eq!(
        session(Strategy::PathSensitive)
            .run(&bad)
            .expect_err("must reject"),
        VerifierError::UninitRead {
            reg: Reg::R1,
            pc: 2
        }
    );
}
