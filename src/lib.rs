//! # tnum-repro — facade crate
//!
//! One-stop re-export of the workspace reproducing *"Sound, Precise, and
//! Fast Abstract Interpretation with Tristate Numbers"* (CGO 2022):
//!
//! * [`domain`] — the domain-generic abstraction layer: the
//!   `AbstractDomain` trait family, the `RefineFrom` reduced-product
//!   hook, and the deterministic PRNG behind every randomized campaign;
//! * [`tnum`] — the tristate-number abstract domain (the paper's subject);
//! * [`bitwise_domain`] — the Regehr–Duongsaa baseline operators and the
//!   LLVM known-bits encoding of the same domain;
//! * [`interval_domain`] — kernel-style value bounds with tnum sync;
//! * [`ebpf`] — the eBPF-subset ISA, assembler, and concrete VM;
//! * [`verifier`] — a BPF-style abstract interpreter whose register state
//!   is the generic reduced product `Product<Tnum, Bounds>`;
//! * [`tnum_verify`] — the domain-generic exhaustive bounded verification
//!   and precision measurement harness.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and figure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bitwise_domain;
pub use domain;
pub use ebpf;
pub use interval_domain;
pub use tnum;
pub use tnum_verify;
pub use verifier;
