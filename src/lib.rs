//! # tnum-repro — facade crate
//!
//! One-stop re-export of the workspace reproducing *"Sound, Precise, and
//! Fast Abstract Interpretation with Tristate Numbers"* (CGO 2022):
//!
//! * [`tnum`] — the tristate-number abstract domain (the paper's subject);
//! * [`bitwise_domain`] — the Regehr–Duongsaa baseline domain;
//! * [`interval_domain`] — kernel-style value bounds with tnum sync;
//! * [`ebpf`] — the eBPF-subset ISA, assembler, and concrete VM;
//! * [`verifier`] — a BPF-style abstract interpreter built on the domains;
//! * [`tnum_verify`] — exhaustive bounded verification and precision
//!   measurement harness.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and figure.

pub use bitwise_domain;
pub use ebpf;
pub use interval_domain;
pub use tnum;
pub use tnum_verify;
pub use verifier;
