//! End-to-end demo (experiment E10): the analyzer proves a packet-filter
//! style program memory-safe using tnum reasoning, then the concrete VM
//! executes it — and a buggy variant is rejected before it can run.
//!
//! The program reads an untrusted byte from the packet (context), masks
//! it, and uses it to index a 16-byte scratch table on the stack —
//! exactly the §I scenario where tnums let the analyzer conclude
//! `index <= 8` and accept the access.
//!
//! Run with: `cargo run --example packet_filter`

use ebpf::asm::assemble;
use ebpf::{Reg, Vm};
use verifier::{Analyzer, AnalyzerOptions};

const FILTER: &str = r"
    ; classify packets by a masked header byte; count into a stack table
    r6 = r1                     ; save packet pointer
    r2 = *(u8 *)(r6 + 0)        ; untrusted byte
    r2 &= 14                    ; tnum 0000xxx0 -> r2 in {0,2,...,14}
    r3 = r10
    r3 += -16                   ; 16-byte table at [r10-16, r10)
    r3 += r2                    ; provably within the table
    *(u8 *)(r3 + 0) = 1         ; mark the bucket
    r0 = *(u8 *)(r6 + 1)        ; verdict byte
    if r0 > 1 goto drop
    exit                        ; accept (0/1 from the packet)
drop:
    r0 = 0
    exit
";

const BUGGY: &str = r"
    ; same program without the mask: the index is unbounded
    r6 = r1
    r2 = *(u8 *)(r6 + 0)
    r3 = r10
    r3 += -16
    r3 += r2
    *(u8 *)(r3 + 0) = 1
    r0 = 0
    exit
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = assemble(FILTER)?;
    println!(
        "program ({} instructions):\n{}",
        prog.len(),
        prog.disassemble()
    );

    // --- Static analysis -------------------------------------------------
    let analyzer = Analyzer::new(AnalyzerOptions::default());
    let analysis = analyzer.analyze(&prog)?;
    println!("verifier: ACCEPTED");

    // Inspect what the analyzer knew right before the table store (insn 6).
    let state = analysis.state_before(6).expect("reachable");
    println!("\nabstract state before the store:");
    println!("  r2 (masked index) = {}", state.reg(Reg::new(2).unwrap()));
    println!("  r3 (table slot)   = {}", state.reg(Reg::new(3).unwrap()));

    // The full verifier log, kernel-verbose style.
    println!("\nannotated analysis:\n{}", analysis.annotate(&prog));

    // --- The buggy variant is rejected -----------------------------------
    let buggy = assemble(BUGGY)?;
    let err = analyzer.analyze(&buggy).expect_err("must be rejected");
    println!("\nbuggy variant: REJECTED — {err}");

    // --- Concrete execution ----------------------------------------------
    let mut vm = Vm::new();
    println!("\nconcrete runs:");
    for byte in [0u8, 7, 14, 255] {
        let mut packet = [byte, (byte % 2 == 0) as u8, 0, 0];
        let verdict = vm.run(&prog, &mut packet)?;
        println!(
            "  packet[0]={byte:>3} -> verdict {verdict}, table bucket {} marked",
            byte & 14
        );
    }

    println!("\npacket_filter OK");
    Ok(())
}
