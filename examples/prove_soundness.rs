//! Bounded verification in miniature (experiments E1/E2): exhaustively
//! prove every operator sound at width 4 and classify which operators are
//! optimal — the same checks the paper ran through Z3, here by
//! enumeration (see DESIGN.md, substitution 1).
//!
//! Run with: `cargo run --release --example prove_soundness`

use tnum::Tnum;
use tnum_verify::ops::OpCatalog;
use tnum_verify::{check_optimality, check_soundness};

fn main() {
    const WIDTH: u32 = 4;
    println!("bounded verification at width {WIDTH} — 3^{WIDTH} = 81 tnums,");
    println!("81 x 81 = 6561 abstract pairs, 16^{WIDTH} = 65536 member checks per operator\n");

    for op in OpCatalog::<Tnum>::paper_suite() {
        let s = check_soundness(op, WIDTH);
        let o = check_optimality(op, WIDTH);
        println!(
            "{:<20} sound: {:<5} optimal: {:<5} ({:.2}% of pairs exact) [{:.0} ms]",
            op.name,
            s.is_sound(),
            o.is_optimal(),
            o.optimal_fraction() * 100.0,
            s.seconds * 1000.0,
        );
        assert!(s.is_sound(), "{} must be sound", op.name);
    }

    println!("\nAs the paper proves: tnum_add and tnum_sub are sound AND optimal");
    println!("(Theorems 6/22); every multiplication is sound but not optimal (§III-C).");
    println!("prove_soundness OK");
}
