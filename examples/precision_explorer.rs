//! Precision explorer: pit the three abstract multiplications against
//! each other on chosen inputs and on a small exhaustive sweep —
//! a hands-on miniature of §IV-A / Table I.
//!
//! Run with: `cargo run --example precision_explorer`

use bitwise_domain::bitwise_mul;
use tnum::Tnum;
use tnum_verify::ops::OpCatalog;
use tnum_verify::{compare_precision_unordered, PrecisionReport};

fn show(p: &str, q: &str, width: u32) -> Result<(), tnum::ParseTnumError> {
    let p: Tnum = p.parse()?;
    let q: Tnum = q.parse()?;
    let ours = p.mul(q).truncate(width);
    let kern = p.mul_kernel_legacy(q).truncate(width);
    let bw = bitwise_mul(p, q).truncate(width);
    println!(
        "P={} Q={}  our_mul={} ({} values)  kern_mul={} ({})  bitwise_mul={} ({})",
        p.to_bin_string(width),
        q.to_bin_string(width),
        ours.to_bin_string(width),
        ours.cardinality(),
        kern.to_bin_string(width),
        kern.cardinality(),
        bw.to_bin_string(width),
        bw.cardinality(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== chosen inputs ==");
    // The Fig. 3 example.
    show("x01", "x10", 5)?;
    // The §IV-A incomparability example at width 9.
    show("000000011", "011x011xx", 9)?;
    // A case where the value/mask decomposition pays off.
    show("00111", "0101x", 5)?;

    println!("\n== exhaustive sweep (Table I in miniature) ==");
    for width in 5..=6 {
        let r: PrecisionReport = compare_precision_unordered(
            OpCatalog::<Tnum>::mul_kernel(),
            OpCatalog::<Tnum>::mul(),
            width,
        );
        println!(
            "width {width}: {} pairs, {} differ, our_mul more precise in {}, kern_mul in {}",
            r.total, r.different, r.b_more_precise, r.a_more_precise
        );
    }

    println!("\n== why: the number of abstract additions matters ==");
    // tnum addition is non-associative and lossy; our_mul performs n+1
    // additions of mask-only tnums, kern_mul up to 2n additions of mixed
    // tnums. Count the unknown trits produced on a stress input.
    let p: Tnum = "0x0x0x0x".parse()?;
    let q: Tnum = "x0x0x0x0".parse()?;
    let ours = p.mul(q).truncate(8);
    let kern = p.mul_kernel_legacy(q).truncate(8);
    println!(
        "P={p} Q={q}: our_mul keeps {} known trits, kern_mul keeps {}",
        8 - ours.truncate(8).unknown_bits(),
        8 - kern.truncate(8).unknown_bits(),
    );

    println!("\nprecision_explorer OK");
    Ok(())
}
