//! Bounded loops through both exploration strategies: a counted memset
//! and a memcpy-style filter — the workload class the classic
//! loop-rejecting verifier could not touch — are verified with delayed
//! widening, re-verified path-sensitively (exact per-trip unrolling,
//! visited-state pruning) side by side, then executed on the concrete VM
//! to confirm the proven facts.
//!
//! Run with: `cargo run --example bounded_loop`

use ebpf::asm::assemble;
use ebpf::{Reg, Vm};
use verifier::{Analyzer, AnalyzerOptions, Strategy, VerificationSession, VerifierError};

/// `for i in 0..13 { buf[i] = 0; sum += i }; return i` — 13 is chosen
/// deliberately: it is not a power of two, so the interval half of the
/// reduced product (not the tnum half) carries the whole safety proof.
const MEMSET: &str = r"
    r1 = 0                  ; i
    r6 = 0                  ; sum
loop:
    r3 = r10
    r3 += -13
    r3 += r1                ; &buf[i], i in [0, 12]
    *(u8 *)(r3 + 0) = 0
    r6 += r1
    r1 += 1
    if r1 < 13 goto loop
    r0 = r1
    exit
";

/// Copy-and-mask filter: move 8 context bytes onto the stack, masking
/// each — a memcpy-shaped loop whose index bounds both a context load
/// and a stack store.
const MEMCPY_FILTER: &str = r"
    r6 = 0                  ; i
loop:
    r3 = r1
    r3 += r6
    r2 = *(u8 *)(r3 + 0)    ; ctx[i]
    r2 &= 127               ; filter: clear the top bit
    r4 = r10
    r4 += -8
    r4 += r6
    *(u8 *)(r4 + 0) = r2    ; buf[i]
    r6 += 1
    if r6 < 8 goto loop
    r0 = r6
    exit
";

/// The same memset without the exit test: genuinely unbounded. The
/// analysis must still terminate — widening drives the counter to ⊤ and
/// the unbounded store is rejected, not looped on forever.
const UNBOUNDED: &str = r"
    r1 = 0
loop:
    r3 = r10
    r3 += -13
    r3 += r1
    *(u8 *)(r3 + 0) = 0
    r1 += 1
    goto loop
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let memset = assemble(MEMSET)?;
    let analysis = Analyzer::new(AnalyzerOptions::default()).analyze(&memset)?;
    println!("== counted memset: ACCEPTED ==\n");
    print!("{}", analysis.annotate(&memset));

    // The fixpoint's exit state pins the counter exactly: the loop runs
    // 13 trips, and narrowing recovers i = 13 from the widened head.
    let exit_state = analysis.state_before(memset.len() - 1).expect("reachable");
    let r0 = exit_state.reg(Reg::R0).as_scalar().expect("scalar");
    println!("\nabstract exit r0 = {r0} (finite, sound)");
    let ret = Vm::new().run(&memset, &mut [0u8; 8])?;
    println!("concrete  exit r0 = {ret}");
    assert!(r0.contains(ret), "soundness: concrete result contained");

    // The copy-on-write state layer shares register files and stack
    // frames across the fixpoint iteration instead of cloning them.
    let stats = analysis.stats();
    println!(
        "\nstate sharing: {} deep copies vs {} under clone-everything \
         ({} O(1) clones, {} joins short-circuited, {} widenings)",
        stats.states_allocated,
        stats.clone_everything_equivalent(),
        stats.states_shared,
        stats.joins_short_circuited,
        stats.widenings_applied,
    );

    // Eager widening (delay 0) extrapolates i before the exit test can
    // cap it; without thresholds that loses the proof — the delay is
    // what buys precision…
    let eager_bare = Analyzer::new(AnalyzerOptions {
        widen_delay: 0,
        harvest_thresholds: false,
        ..AnalyzerOptions::default()
    });
    match eager_bare.analyze(&memset) {
        Err(e) => println!("\nwith widen_delay = 0, no thresholds: REJECTED ({e})"),
        Ok(_) => unreachable!("eager widening without thresholds cannot keep the bound"),
    }
    // …unless the widening ladder is extended with the program's own
    // comparison constants ("widening with thresholds"): then even the
    // eager configuration lands the counter on the `i < 13` guard.
    let eager = Analyzer::new(AnalyzerOptions {
        widen_delay: 0,
        ..AnalyzerOptions::default()
    });
    match eager.analyze(&memset) {
        Ok(_) => println!("with widen_delay = 0 + harvested thresholds: ACCEPTED"),
        Err(e) => unreachable!("thresholds recover the bound: {e}"),
    }

    // ---- Side by side: widening fixpoint vs path-sensitive ----
    //
    // The same memset under both exploration strategies. The fixpoint
    // joins all 13 trips at the loop head and needs widening + narrowing
    // to recover the exit bound; the path-sensitive explorer unrolls the
    // 13 trips with exact per-trip states (unroll_k defaults to 32) and
    // never widens at all. A loop with two back-edges shows the other
    // half of the kernel-style machinery: re-converging paths are pruned
    // against the visited-state table.
    println!("\n== strategy comparison on the counted memset ==\n");
    let mut per_strategy = Vec::new();
    for strategy in Strategy::ALL {
        let analysis = VerificationSession::new()
            .with_strategy(strategy)
            .run(&memset)?;
        let exit = analysis.state_before(memset.len() - 1).expect("reachable");
        let r0 = exit.reg(Reg::R0).as_scalar().expect("scalar");
        println!(
            "{:>8}: exit r0 = {r0}, {} visits, {} widenings, {} unrolled trips, \
             {} pruned / {} subset checks",
            strategy.name(),
            analysis.stats().visits,
            analysis.stats().widenings_applied,
            analysis.stats().unrolled_trips,
            analysis.stats().states_pruned,
            analysis.stats().subset_checks,
        );
        per_strategy.push(analysis.stats());
    }
    let (fp, ps) = (per_strategy[0], per_strategy[1]);
    println!(
        "\ndelta (path - fixpoint): {:+} visits, {:+} widenings, {:+} deep copies",
        ps.visits as i64 - fp.visits as i64,
        ps.widenings_applied as i64 - fp.widenings_applied as i64,
        ps.states_allocated as i64 - fp.states_allocated as i64,
    );
    assert_eq!(ps.widenings_applied, 0, "unrolling needs no widening");

    // Pruning needs paths that re-converge: the bench suite's canonical
    // continue-style loop with two back-edges hands the visited table
    // states to cover.
    let two_back_edge = bench::fixpoint_suite::two_back_edge();
    let pruned = VerificationSession::new()
        .with_strategy(Strategy::PathSensitive)
        .with_options(AnalyzerOptions {
            unroll_k: 4,
            ..AnalyzerOptions::default()
        })
        .run(&two_back_edge)?;
    println!(
        "\n== two-back-edge loop, unroll_k = 4 == ACCEPTED \
         ({} states pruned by the visited table, {} widenings past the unroll bound)",
        pruned.stats().states_pruned,
        pruned.stats().widenings_applied,
    );
    assert!(pruned.stats().states_pruned > 0, "pruning fired");

    let filter = assemble(MEMCPY_FILTER)?;
    let analyzer = Analyzer::new(AnalyzerOptions {
        ctx_size: 8,
        ..AnalyzerOptions::default()
    });
    analyzer.analyze(&filter)?;
    let mut ctx = *b"\xff\x80\x7f12345";
    let ret = Vm::new().run(&filter, &mut ctx)?;
    println!("\n== memcpy filter: ACCEPTED == (copied {ret} bytes)");

    // And the unbounded variant terminates the *analysis* (widening to
    // ⊤ makes the store unprovable) instead of iterating forever.
    let unbounded = assemble(UNBOUNDED)?;
    match Analyzer::new(AnalyzerOptions::default()).analyze(&unbounded) {
        Err(VerifierError::OutOfBounds { pc, .. }) => {
            println!(
                "\n== unbounded memset: REJECTED == (store at pc {pc} unprovable after widening)"
            );
        }
        other => unreachable!("expected out-of-bounds rejection, got {other:?}"),
    }
    Ok(())
}
