//! The LLVM bridge (§V of the paper): tnums and LLVM's known-bits
//! analysis are the same abstract domain in different encodings. This
//! example converts between them and shows the transfer functions agree —
//! the paper's remark that its verification results "will be likely
//! useful to LLVM's known-bits analysis", made executable.
//!
//! Run with: `cargo run --example knownbits_bridge`

use bitwise_domain::knownbits::KnownBits;
use tnum::enumerate::tnums;
use tnum::Tnum;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The encoding bijection ----------------------------------------
    let t: Tnum = "1x0x".parse()?;
    let kb = KnownBits::from_tnum(t);
    println!(
        "kernel encoding:  value={:04b} mask={:04b}",
        t.value(),
        t.mask()
    );
    println!(
        "LLVM encoding:    ones ={:04b} zeros=...{:04b}",
        kb.ones(),
        kb.zeros() & 0xf
    );
    assert_eq!(kb.to_tnum(), t);
    println!("round trip OK: {t}\n");

    // --- Transfer functions agree exactly -------------------------------
    let a: Tnum = "10x1".parse()?;
    let b: Tnum = "x110".parse()?;
    let (ka, kbb) = (KnownBits::from_tnum(a), KnownBits::from_tnum(b));
    println!("a = {a}, b = {b}");
    println!(
        "  tnum_add -> {:<8} KnownBits::computeForAddSub -> {}",
        a.add(b),
        ka.add(kbb).to_tnum()
    );
    println!(
        "  tnum_and -> {:<8} KnownBits & -> {}",
        a.and(b),
        ka.and(kbb).to_tnum()
    );
    println!(
        "  tnum_or  -> {:<8} KnownBits | -> {}",
        a.or(b),
        ka.or(kbb).to_tnum()
    );

    // Exhaustive agreement at width 5 — the differential check the tests
    // pin down, run live here.
    let mut checked = 0u64;
    for a in tnums(5) {
        for b in tnums(5) {
            let (ka, kb) = (KnownBits::from_tnum(a), KnownBits::from_tnum(b));
            assert_eq!(ka.add(kb).to_tnum(), a.add(b));
            assert_eq!(ka.sub(kb).to_tnum(), a.sub(b));
            assert_eq!(ka.xor(kb).to_tnum(), a.xor(b));
            checked += 1;
        }
    }
    println!("\nexhaustive width-5 agreement: {checked} pairs x 3 operators OK");

    // --- Join/meet terminology differs; semantics match ------------------
    let p = KnownBits::constant(4);
    let q = KnownBits::constant(6);
    // LLVM's "intersectWith" keeps information common to both paths —
    // that is the lattice *join* (kernel tnum_union).
    let joined = p.intersect_with(q);
    assert_eq!(joined.to_tnum(), Tnum::constant(4).union(Tnum::constant(6)));
    println!(
        "LLVM intersectWith(100, 110) = {} == kernel tnum_union",
        joined.to_tnum()
    );

    println!("\nknownbits_bridge OK");
    Ok(())
}
