//! Fig. 1 interactively (experiment E8): the Hasse diagram of the tnum
//! lattice at width 2, the kernel (value, mask) encodings, and the two
//! worked α/γ round trips from the figure.
//!
//! Run with: `cargo run --example lattice_explorer`

use tnum::enumerate::tnums;
use tnum::Tnum;

fn main() {
    const W: u32 = 2;

    println!("The abstract domain T_{W}: 3^{W} = 9 well-formed tnums\n");
    // Group elements by |γ| — the ranks of the Hasse diagram.
    for rank_card in [1u128, 2, 4] {
        let level: Vec<String> = tnums(W)
            .filter(|t| t.cardinality() == rank_card)
            .map(|t| {
                format!(
                    "{} (v={:02b}, m={:02b}) γ={:?}",
                    t.to_bin_string(W),
                    t.value(),
                    t.mask(),
                    t.concretize().collect::<Vec<_>>()
                )
            })
            .collect();
        println!("|γ| = {rank_card}:  {}", level.join("   "));
    }

    println!("\nCovering relation (a ⊏ b with nothing in between):");
    let all: Vec<Tnum> = tnums(W).collect();
    for &a in &all {
        for &b in &all {
            if a.is_strict_subset_of(b)
                && !all
                    .iter()
                    .any(|&c| a.is_strict_subset_of(c) && c.is_strict_subset_of(b))
            {
                println!("  {} ⊏ {}", a.to_bin_string(W), b.to_bin_string(W));
            }
        }
    }

    // The two worked examples of Fig. 1.
    println!("\nFig. 1(i):  C' = {{1, 2, 3}}");
    let c1 = Tnum::abstract_of([1u64, 2, 3]).unwrap();
    println!("  α(C') = {}", c1.to_bin_string(W));
    println!(
        "  γ(α(C')) = {:?}  (over-approximates C')",
        c1.concretize().collect::<Vec<_>>()
    );

    println!("Fig. 1(ii): C'' = {{2, 3}}");
    let c2 = Tnum::abstract_of([2u64, 3]).unwrap();
    println!("  α(C'') = {}", c2.to_bin_string(W));
    println!(
        "  γ(α(C'')) = {:?}  (exact)",
        c2.concretize().collect::<Vec<_>>()
    );

    // Galois-connection sanity over the whole width-2 powerset.
    println!("\nChecking C ⊆ γ(α(C)) for all 15 non-empty subsets of {{0,1,2,3}}:");
    let mut checked = 0;
    for bits in 1u32..16 {
        let set: Vec<u64> = (0..4u64).filter(|v| bits & (1 << v) != 0).collect();
        let a = Tnum::abstract_of(set.iter().copied()).unwrap();
        assert!(
            set.iter().all(|&v| a.contains(v)),
            "extensivity violated for {set:?}"
        );
        checked += 1;
    }
    println!("  all {checked} subsets OK (γ∘α is extensive — Property G3)");

    println!("\nlattice_explorer OK");
}
