//! Quickstart: a tour of the tnum abstract domain.
//!
//! Reproduces the paper's worked examples along the way: the Fig. 2
//! addition, the Fig. 3 multiplication, and the §I uncertainty story.
//!
//! Run with: `cargo run --example quickstart`

use tnum::Tnum;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Constructing tnums -------------------------------------------
    // From a trit string (x = unknown), a constant, or a set of values.
    let from_str: Tnum = "10x0".parse()?;
    let from_const = Tnum::constant(42);
    let from_set = Tnum::abstract_of([8u64, 10]).expect("non-empty set");
    println!(
        "parsed   10x0 -> value={:#x} mask={:#x}",
        from_str.value(),
        from_str.mask()
    );
    println!("constant 42   -> {from_const}");
    println!(
        "abstract_of {{8, 10}} -> {from_set} (same as 10x0: {})",
        from_set == from_str
    );

    // --- Concretization ------------------------------------------------
    let members: Vec<u64> = from_str.concretize().collect();
    println!("γ(10x0) = {members:?} ({} values)", from_str.cardinality());

    // --- The Fig. 2 addition -------------------------------------------
    let p: Tnum = "10x0".parse()?; // {8, 10}
    let q: Tnum = "10x1".parse()?; // {9, 11}
    let sum = p.add(q);
    println!("\nFig. 2:  {p} + {q} = {}", sum.to_bin_string(5));
    println!("γ(sum) = {:?}", sum.concretize().collect::<Vec<_>>());
    assert_eq!(sum.to_bin_string(5), "10xx1");

    // --- The Fig. 3 multiplication -------------------------------------
    let p: Tnum = "x01".parse()?; // {1, 5}
    let q: Tnum = "x10".parse()?; // {2, 6}
    let prod = p.mul(q);
    println!("\nFig. 3:  {p} * {q} = {}", prod.to_bin_string(5));
    assert_eq!(prod.to_bin_string(5), "xxx10");

    // --- §I: one unknown bit can poison every output bit ---------------
    let ones = Tnum::constant(u64::MAX);
    let bit: Tnum = "x".parse()?;
    println!(
        "\n§I:      (all ones) + {bit} = {} (all 64 trits unknown)",
        ones.add(bit)
    );
    assert!(ones.add(bit).is_unknown());

    // --- The motivating bound: masking implies a range -----------------
    let any = Tnum::UNKNOWN;
    let masked = any.and(Tnum::constant(0b0110)); // the paper's 01x0 shape
    println!(
        "\nunknown & 0b0110 = {} -> max value {} <= 8",
        masked.to_bin_string(4),
        masked.max_value()
    );
    assert!(masked.max_value() <= 8);

    // --- Lattice operations --------------------------------------------
    let a = Tnum::constant(4);
    let b = Tnum::constant(6);
    let join = a.union(b);
    println!(
        "\nunion(100, 110) = {} — the smallest tnum containing both",
        join.to_bin_string(3)
    );
    assert!(a.is_subset_of(join) && b.is_subset_of(join));
    let meet = join.intersect("1x0".parse()?);
    println!("intersect(1x0, 1x0) = {meet:?}");

    // --- Kernel auxiliary ops -------------------------------------------
    println!("\ntnum_range(8, 11) = {}", Tnum::range(8, 11));
    println!(
        "alignment: 1x00 is 4-aligned: {}",
        "1x00".parse::<Tnum>()?.is_aligned(4)
    );

    println!("\nquickstart OK");
    Ok(())
}
